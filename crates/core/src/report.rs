//! Human-readable rendering of framework results: the per-layer bit tables
//! of paper Figs. 11–12 and the summary rows of Table I.

use crate::evaluator::EvalStats;
use crate::framework::QuantResult;
use qcn_capsnet::GroupInfo;
use std::fmt::Write as _;

/// Renders a [`QuantResult`] as the per-layer fractional-bit table used in
/// paper Figs. 11 and 12 (weights / activations / dynamic routing columns),
/// followed by the accuracy and memory-reduction summary line.
///
/// # Panics
///
/// Panics when the group count differs from the config's layer count.
pub fn layer_table(groups: &[GroupInfo], result: &QuantResult) -> String {
    assert_eq!(
        groups.len(),
        result.config.layers.len(),
        "group count mismatch"
    );
    let mut out = String::new();
    let show = |b: Option<u8>| b.map_or("fp32".to_string(), |v| format!("{v:>4}"));
    writeln!(
        out,
        "{:<6} {:>8} {:>8} {:>8}",
        "layer", "W bits", "A bits", "DR bits"
    )
    .unwrap();
    for (g, lq) in groups.iter().zip(&result.config.layers) {
        let dr = if g.has_routing {
            show(lq.effective_dr_frac())
        } else {
            "   -".to_string()
        };
        writeln!(
            out,
            "{:<6} {:>8} {:>8} {:>8}",
            g.name,
            show(lq.weight_frac),
            show(lq.act_frac),
            dr
        )
        .unwrap();
    }
    writeln!(
        out,
        "{}: acc={:.2}%, W mem reduction={:.2}x, A mem reduction={:.2}x",
        result.kind,
        result.accuracy * 100.0,
        result.weight_mem_reduction,
        result.act_mem_reduction
    )
    .unwrap();
    out
}

/// Renders one row of paper Table I:
/// `model  dataset  accuracy  W-mem-reduction  A-mem-reduction`.
pub fn table1_row(model: &str, dataset: &str, result: &QuantResult) -> String {
    format!(
        "{:<12} {:<18} {:>7.2}% {:>8.2}x {:>8.2}x",
        model,
        dataset,
        result.accuracy * 100.0,
        result.weight_mem_reduction,
        result.act_mem_reduction
    )
}

/// Formats a bit count as Mbit with two decimals (the unit of Fig. 1 and
/// the paper's memory-budget discussion).
pub fn mbit(bits: u64) -> String {
    format!("{:.2} Mbit", bits as f64 / 1.0e6)
}

/// Renders the evaluator's work/savings counters as a two-line summary:
/// what was evaluated, and what the search-time caches saved.
pub fn search_stats(stats: &EvalStats) -> String {
    let total_stages = stats.stages_run + stats.stages_skipped;
    let skipped_pct = if total_stages > 0 {
        100.0 * stats.stages_skipped as f64 / total_stages as f64
    } else {
        0.0
    };
    format!(
        "evaluations={} memo hits={} early exits={} (accept {}, reject {}) resumes={}\n\
         prefix hits={} stages skipped={}/{} ({skipped_pct:.0}%) evictions: memo={} prefix={} speculative={}",
        stats.evaluations,
        stats.memo_hits,
        stats.early_accepts + stats.early_rejects,
        stats.early_accepts,
        stats.early_rejects,
        stats.partial_resumes,
        stats.prefix_hits,
        stats.stages_skipped,
        total_stages,
        stats.memo_evictions,
        stats.prefix_evictions,
        stats.speculative_probes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::ResultKind;
    use qcn_capsnet::{LayerQuant, ModelQuant};
    use qcn_fixed::RoundingScheme;

    fn sample() -> (Vec<GroupInfo>, QuantResult) {
        let groups = vec![
            GroupInfo {
                name: "L1".into(),
                weight_count: 10,
                activation_count: 10,
                has_routing: false,
            },
            GroupInfo {
                name: "L2".into(),
                weight_count: 10,
                activation_count: 10,
                has_routing: true,
            },
        ];
        let config = ModelQuant {
            layers: vec![
                LayerQuant::uniform(8),
                LayerQuant {
                    weight_frac: Some(6),
                    act_frac: Some(5),
                    dr_frac: Some(3),
                    ..LayerQuant::full_precision()
                },
            ],
            scheme: RoundingScheme::Stochastic,
            seed: 0,
        };
        let result = QuantResult {
            kind: ResultKind::Satisfied,
            config,
            accuracy: 0.9952,
            weight_mem_bits: 160,
            act_mem_bits: 150,
            weight_mem_reduction: 4.11,
            act_mem_reduction: 2.72,
        };
        (groups, result)
    }

    #[test]
    fn layer_table_includes_all_groups_and_summary() {
        let (groups, result) = sample();
        let table = layer_table(&groups, &result);
        assert!(table.contains("L1"), "{table}");
        assert!(table.contains("L2"), "{table}");
        assert!(table.contains("99.52%"), "{table}");
        assert!(table.contains("4.11x"), "{table}");
        // Non-routing layer shows a dash in the DR column.
        let l1_line = table.lines().find(|l| l.starts_with("L1")).unwrap();
        assert!(l1_line.trim_end().ends_with('-'), "{l1_line}");
        // Routing layer shows its DR bits.
        let l2_line = table.lines().find(|l| l.starts_with("L2")).unwrap();
        assert!(l2_line.contains('3'), "{l2_line}");
    }

    #[test]
    fn table1_row_format() {
        let (_, result) = sample();
        let row = table1_row("ShallowCaps", "synth-MNIST", &result);
        assert!(row.contains("ShallowCaps"));
        assert!(row.contains("99.52%"));
        assert!(row.contains("2.72x"));
    }

    #[test]
    fn mbit_formatting() {
        assert_eq!(mbit(217_000_000), "217.00 Mbit");
        assert_eq!(mbit(500_000), "0.50 Mbit");
    }

    #[test]
    fn search_stats_summarises_counters() {
        let stats = EvalStats {
            evaluations: 12,
            memo_hits: 7,
            early_accepts: 3,
            early_rejects: 4,
            partial_resumes: 2,
            prefix_hits: 40,
            stages_run: 60,
            stages_skipped: 60,
            memo_evictions: 1,
            prefix_evictions: 0,
            speculative_probes: 5,
        };
        let s = search_stats(&stats);
        assert!(s.contains("evaluations=12"), "{s}");
        assert!(s.contains("early exits=7 (accept 3, reject 4)"), "{s}");
        assert!(s.contains("stages skipped=60/120 (50%)"), "{s}");
        // The zero-work case must not divide by zero.
        let empty = search_stats(&EvalStats::default());
        assert!(empty.contains("(0%)"), "{empty}");
    }
}
