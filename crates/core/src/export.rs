//! Deployment export: packs a quantized model's weights into the *actual*
//! bit-exact storage layout the memory accounting claims — each group's
//! weights as contiguous two's-complement words of its chosen wordlength.
//!
//! This closes the loop on the paper's memory numbers: the byte length of
//! the packed blob equals `weight_memory_bits / 8` (rounded up per group),
//! and unpacking reproduces the quantized weights exactly.

use crate::memory::FP32_BITS;
use qcn_capsnet::{CapsNet, ModelQuant};
use qcn_fixed::QFormat;

/// One group's packed weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedGroup {
    /// Group name (from [`qcn_capsnet::GroupInfo`]).
    pub name: String,
    /// Wordlength in bits (1 + fractional bits), or 32 for FP32 groups.
    pub wordlength: u8,
    /// Number of weights.
    pub count: usize,
    /// Bit-packed two's-complement words, LSB-first within each byte.
    pub data: Vec<u8>,
    /// IEEE CRC-32 of `data`, computed at pack time. Loaders verify it so
    /// a blob corrupted in storage or transit fails typed instead of
    /// silently decoding to wrong weights.
    pub crc32: u32,
}

/// A fully packed model: per-group blobs plus the recipe to decode them.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedModel {
    /// Packed weight groups, in model group order.
    pub groups: Vec<PackedGroup>,
    /// The quantization recipe the weights were packed under.
    pub config: ModelQuant,
}

impl PackedModel {
    /// Total storage in bytes.
    pub fn total_bytes(&self) -> usize {
        self.groups.iter().map(|g| g.data.len()).sum()
    }
}

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) — the same checksum
/// as zlib/PNG, implemented bitwise so the export path stays
/// dependency-free. Integrity only, not authentication: it catches every
/// single-bit flip and all burst errors up to 32 bits.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends `bits` low-order bits of `value` to a LSB-first bit stream.
fn push_bits(stream: &mut Vec<u8>, bit_len: &mut usize, value: u64, bits: u8) {
    for i in 0..bits {
        let bit = (value >> i) & 1;
        let byte_index = *bit_len / 8;
        if byte_index == stream.len() {
            stream.push(0);
        }
        stream[byte_index] |= (bit as u8) << (*bit_len % 8);
        *bit_len += 1;
    }
}

/// Reads `bits` bits from a LSB-first stream at `*cursor`, sign-extending.
fn read_bits(stream: &[u8], cursor: &mut usize, bits: u8) -> i64 {
    let mut value = 0u64;
    for i in 0..bits {
        let bit = (stream[*cursor / 8] >> (*cursor % 8)) & 1;
        value |= (bit as u64) << i;
        *cursor += 1;
    }
    // Sign extension from the top packed bit.
    let shift = 64 - bits as u32;
    ((value << shift) as i64) >> shift
}

/// Packs a model's (already FP32) weights under `config` into bit-exact
/// fixed-point storage. Weights are rounded by
/// [`CapsNet::with_quantized_weights`] first, so the packed words are the
/// values inference actually uses.
///
/// FP32 groups (no `weight_frac`) are stored as raw 32-bit IEEE words.
///
/// # Panics
///
/// Panics when `config` has the wrong group count, or a quantized weight
/// falls outside its format's range (cannot happen for weights produced by
/// the framework's rounding).
pub fn pack_model<M: CapsNet>(model: &M, config: &ModelQuant) -> PackedModel {
    let qmodel = model.with_quantized_weights(config);
    let groups = qmodel.groups();
    assert_eq!(groups.len(), config.layers.len(), "group count mismatch");
    let params = qmodel.params();
    let mut param_iter = params.into_iter();
    let mut packed_groups = Vec::with_capacity(groups.len());
    for (group, lq) in groups.iter().zip(&config.layers) {
        let mut stream = Vec::new();
        let mut bit_len = 0usize;
        let mut remaining = group.weight_count;
        let wordlength = lq.weight_frac.map_or(FP32_BITS as u8, |f| 1 + f);
        while remaining > 0 {
            let p = param_iter.next().expect("params cover all groups");
            remaining -= p.len();
            for &w in p.data() {
                match lq.weight_frac {
                    None => push_bits(&mut stream, &mut bit_len, w.to_bits() as u64, 32),
                    Some(frac) => {
                        let format = QFormat::with_frac(frac);
                        let raw = (w / format.precision()).round() as i64;
                        assert!(
                            (format.min_raw()..=format.max_raw()).contains(&raw),
                            "weight {w} not representable in {format}"
                        );
                        push_bits(&mut stream, &mut bit_len, raw as u64, wordlength);
                    }
                }
            }
        }
        let checksum = crc32(&stream);
        packed_groups.push(PackedGroup {
            name: group.name.clone(),
            wordlength,
            count: group.weight_count,
            data: stream,
            crc32: checksum,
        });
    }
    PackedModel {
        groups: packed_groups,
        config: config.clone(),
    }
}

/// Unpacks a [`PackedModel`] back into per-group `f32` weight vectors.
pub fn unpack_weights(packed: &PackedModel) -> Vec<Vec<f32>> {
    packed
        .groups
        .iter()
        .zip(&packed.config.layers)
        .map(|(group, lq)| {
            let mut cursor = 0usize;
            (0..group.count)
                .map(|_| match lq.weight_frac {
                    None => {
                        let raw = read_bits(&group.data, &mut cursor, 32) as u32;
                        f32::from_bits(raw)
                    }
                    Some(frac) => {
                        let raw = read_bits(&group.data, &mut cursor, group.wordlength);
                        raw as f32 * QFormat::with_frac(frac).precision()
                    }
                })
                .collect()
        })
        .collect()
}

/// Unpacks a [`PackedModel`] into per-group *raw* two's-complement weight
/// vectors at each group's `weight_frac` fractional bits — the form a true
/// integer inference engine consumes directly, with no float in the path.
/// FP32 groups (no `weight_frac`) have no fixed-point raw form and decode
/// to `None`; callers keep those groups on the f32 fallback from
/// [`unpack_weights`].
pub fn unpack_raw_weights(packed: &PackedModel) -> Vec<Option<Vec<i64>>> {
    packed
        .groups
        .iter()
        .zip(&packed.config.layers)
        .map(|(group, lq)| {
            lq.weight_frac.map(|_| {
                let mut cursor = 0usize;
                (0..group.count)
                    .map(|_| read_bits(&group.data, &mut cursor, group.wordlength))
                    .collect()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::weight_memory_bits;
    use qcn_capsnet::{ShallowCaps, ShallowCapsConfig};
    use qcn_fixed::RoundingScheme;

    fn model() -> ShallowCaps {
        let config = ShallowCapsConfig {
            conv_channels: 6,
            primary_types: 3,
            digit_dim: 4,
            ..ShallowCapsConfig::small(1)
        };
        ShallowCaps::new(config, 2)
    }

    #[test]
    fn packed_size_matches_memory_accounting() {
        let m = model();
        let mut config = ModelQuant::uniform(3, 5, RoundingScheme::RoundToNearest);
        config.layers[2].weight_frac = Some(2);
        let packed = pack_model(&m, &config);
        let accounted_bits = weight_memory_bits(&m.groups(), &config);
        // Per-group byte rounding only.
        let packed_bits = packed.total_bytes() as u64 * 8;
        assert!(packed_bits >= accounted_bits);
        assert!(packed_bits < accounted_bits + 8 * packed.groups.len() as u64);
    }

    #[test]
    fn roundtrip_reproduces_quantized_weights_exactly() {
        let m = model();
        let config = ModelQuant::uniform(3, 6, RoundingScheme::Truncation);
        let packed = pack_model(&m, &config);
        let unpacked = unpack_weights(&packed);
        let qmodel = m.with_quantized_weights(&config);
        let mut offset = 0usize;
        let params = qmodel.params();
        for (gi, group) in qmodel.groups().iter().enumerate() {
            let mut expected = Vec::with_capacity(group.weight_count);
            let mut remaining = group.weight_count;
            while remaining > 0 {
                let p = params[offset];
                expected.extend_from_slice(p.data());
                remaining -= p.len();
                offset += 1;
            }
            assert_eq!(unpacked[gi], expected, "group {}", group.name);
        }
    }

    #[test]
    fn fp32_groups_roundtrip_bit_exactly() {
        let m = model();
        let config = ModelQuant::full_precision(3);
        let packed = pack_model(&m, &config);
        let unpacked = unpack_weights(&packed);
        let total: usize = unpacked.iter().map(Vec::len).sum();
        assert_eq!(total, m.total_weights());
        assert_eq!(packed.groups[0].wordlength, 32);
        // Spot-check exact bit patterns.
        assert_eq!(unpacked[0][0], m.params()[0].data()[0]);
    }

    #[test]
    fn raw_unpack_is_the_integer_form_of_f32_unpack() {
        let m = model();
        let mut config = ModelQuant::uniform(3, 4, RoundingScheme::RoundToNearest);
        config.layers[1].weight_frac = None; // mixed: one FP32 group
        let packed = pack_model(&m, &config);
        let floats = unpack_weights(&packed);
        let raws = unpack_raw_weights(&packed);
        assert!(raws[1].is_none(), "FP32 group has no raw form");
        for (gi, frac) in [(0usize, 4u8), (2, 4)] {
            let eps = QFormat::with_frac(frac).precision();
            let raw = raws[gi].as_ref().expect("quantized group decodes raw");
            assert_eq!(raw.len(), floats[gi].len());
            for (&r, &f) in raw.iter().zip(&floats[gi]) {
                assert_eq!(r as f32 * eps, f, "group {gi}");
            }
        }
    }

    #[test]
    fn negative_weights_pack_in_twos_complement() {
        // Directly exercise the bit codec with known values.
        let mut stream = Vec::new();
        let mut len = 0usize;
        // -3 in 4 bits = 0b1101.
        push_bits(&mut stream, &mut len, (-3i64) as u64, 4);
        push_bits(&mut stream, &mut len, 5, 4);
        let mut cursor = 0usize;
        assert_eq!(read_bits(&stream, &mut cursor, 4), -3);
        assert_eq!(read_bits(&stream, &mut cursor, 4), 5);
        assert_eq!(stream.len(), 1, "two 4-bit words fit one byte");
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn packed_groups_carry_a_valid_checksum_and_flips_break_it() {
        let m = model();
        let config = ModelQuant::uniform(3, 5, RoundingScheme::RoundToNearest);
        let packed = pack_model(&m, &config);
        for group in &packed.groups {
            assert_eq!(group.crc32, crc32(&group.data), "group {}", group.name);
            if !group.data.is_empty() {
                let mut corrupt = group.data.clone();
                corrupt[0] ^= 0x10;
                assert_ne!(group.crc32, crc32(&corrupt), "group {}", group.name);
            }
        }
    }

    #[test]
    fn extreme_compression_packs_tiny() {
        let m = model();
        // 1-bit words: total bytes ≈ weights/8.
        let config = ModelQuant::uniform(3, 0, RoundingScheme::Truncation);
        let packed = pack_model(&m, &config);
        let weights = m.total_weights();
        assert!(packed.total_bytes() <= weights / 8 + packed.groups.len());
    }
}
