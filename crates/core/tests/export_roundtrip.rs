//! Property tests for the deployment export bit codec: packing a model and
//! unpacking it (as `f32` grid values or raw integers) must roundtrip
//! exactly for arbitrary per-group wordlengths from 2 to 32 bits, including
//! groups whose bit length is not a multiple of 8, and the blob size must
//! equal the memory accounting's `weight_memory_bits` rounded up per group.

use proptest::prelude::*;
use qcapsnets::export::{pack_model, unpack_raw_weights, unpack_weights};
use qcapsnets::memory::weight_memory_bits;
use qcn_capsnet::{CapsNet, ModelQuant, ShallowCaps, ShallowCapsConfig};
use qcn_fixed::{QFormat, RoundingScheme};

/// A deliberately tiny ShallowCaps so each proptest case packs fast. The
/// group weight counts (conv: 84, primary: 444, digitcaps: 1440 for this
/// geometry) are not multiples of 8, so odd wordlengths exercise packed
/// groups that end mid-byte.
fn tiny_model() -> ShallowCaps {
    let config = ShallowCapsConfig {
        conv_channels: 3,
        primary_types: 2,
        digit_dim: 3,
        ..ShallowCapsConfig::small(1)
    };
    ShallowCaps::new(config, 7)
}

/// The group's quantized reference weights, flattened in parameter order.
fn expected_group_weights(qmodel: &ShallowCaps) -> Vec<Vec<f32>> {
    let params = qmodel.params();
    let mut iter = params.into_iter();
    qmodel
        .groups()
        .iter()
        .map(|group| {
            let mut expected = Vec::with_capacity(group.weight_count);
            while expected.len() < group.weight_count {
                let p = iter.next().expect("params cover all groups");
                expected.extend_from_slice(p.data());
            }
            expected
        })
        .collect()
}

/// Strategy: per-group weight fraction — `None` keeps the group in FP32
/// (32-bit words), `Some(f)` packs `1 + f`-bit words for f in 1..=31,
/// covering wordlengths 2..=32. Zero maps to the FP32 case so roughly one
/// group in 32 stays unquantized.
fn frac_strategy() -> impl Strategy<Value = Option<u8>> {
    (0u8..=31).prop_map(|f| if f == 0 { None } else { Some(f) })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pack_unpack_roundtrips_for_arbitrary_wordlengths(
        fracs3 in (frac_strategy(), frac_strategy(), frac_strategy()),
        scheme_idx in 0usize..4,
    ) {
        let fracs = [fracs3.0, fracs3.1, fracs3.2];
        let m = tiny_model();
        let scheme = RoundingScheme::EXTENDED[scheme_idx];
        let mut config = ModelQuant::full_precision(3);
        config.scheme = scheme;
        for (lq, frac) in config.layers.iter_mut().zip(fracs) {
            lq.weight_frac = frac;
        }

        let packed = pack_model(&m, &config);
        let qmodel = m.with_quantized_weights(&config);
        let expected = expected_group_weights(&qmodel);

        // f32 unpack reproduces the quantized weights bit-exactly.
        let unpacked = unpack_weights(&packed);
        prop_assert_eq!(&unpacked, &expected);

        // Raw unpack is the same data as integers on the group's grid, and
        // FP32 groups decode to None.
        let raws = unpack_raw_weights(&packed);
        for ((raw, frac), floats) in raws.iter().zip(fracs).zip(&unpacked) {
            match frac {
                None => prop_assert!(raw.is_none()),
                Some(f) => {
                    let eps = QFormat::with_frac(f).precision();
                    let raw = raw.as_ref().expect("raw form for quantized group");
                    prop_assert_eq!(raw.len(), floats.len());
                    let lo = QFormat::with_frac(f).min_raw();
                    let hi = QFormat::with_frac(f).max_raw();
                    for (&r, &v) in raw.iter().zip(floats) {
                        prop_assert!((lo..=hi).contains(&r));
                        prop_assert_eq!(r as f32 * eps, v);
                    }
                }
            }
        }

        // Blob size: each group is its bit count rounded up to whole bytes,
        // and the total agrees with the memory accounting.
        let mut accounted_bytes = 0usize;
        for (group, frac) in packed.groups.iter().zip(fracs) {
            let wordlength = frac.map_or(32usize, |f| 1 + f as usize);
            let bits = group.count * wordlength;
            prop_assert_eq!(group.data.len(), bits.div_ceil(8), "group {}", &group.name);
            accounted_bytes += bits.div_ceil(8);
        }
        prop_assert_eq!(packed.total_bytes(), accounted_bytes);
        let accounted_bits = weight_memory_bits(&m.groups(), &config);
        let per_group_bits: u64 = packed
            .groups
            .iter()
            .zip(fracs)
            .map(|(g, frac)| g.count as u64 * frac.map_or(32u64, |f| 1 + f as u64))
            .sum();
        prop_assert_eq!(per_group_bits, accounted_bits);
    }

    #[test]
    fn non_byte_aligned_groups_end_mid_byte(
        // Skip fracs giving byte-multiple wordlengths (7, 15, 23, 31): bump
        // them by one; the next wordlength up is never a multiple of 8.
        frac in (1u8..=30).prop_map(|f| if (1 + f) % 8 == 0 { f + 1 } else { f }),
    ) {
        // With an odd wordlength every group's bit length is checked to be
        // non-byte-aligned at least once across the weight counts, proving
        // the codec handles groups that end mid-byte (the trailing bits of
        // the last byte stay zero and are ignored on decode).
        let m = tiny_model();
        let config = ModelQuant::uniform(3, frac, RoundingScheme::Truncation);
        let packed = pack_model(&m, &config);
        let wordlength = 1 + frac as usize;
        let misaligned = packed
            .groups
            .iter()
            .any(|g| (g.count * wordlength) % 8 != 0);
        prop_assert!(
            misaligned,
            "expected at least one group ending mid-byte at wordlength {wordlength}"
        );
        prop_assert_eq!(
            unpack_weights(&packed),
            expected_group_weights(&m.with_quantized_weights(&config))
        );
    }
}
