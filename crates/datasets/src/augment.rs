//! Training-time data augmentation, matching the paper's recipes (§IV-A):
//! random shifts, small rotations and horizontal flips.

use qcn_tensor::Tensor;
use rand::Rng;

/// Shifts a `[c, h, w]` image by whole pixels with zero padding.
///
/// Positive `dx` moves content right; positive `dy` moves it down.
///
/// # Panics
///
/// Panics when `image` is not rank 3.
pub fn shift(image: &Tensor, dx: i32, dy: i32) -> Tensor {
    assert_eq!(image.rank(), 3, "shift expects [c, h, w]");
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    Tensor::from_fn([c, h, w], |idx| {
        let (ch, y, x) = (idx[0], idx[1] as i32, idx[2] as i32);
        let (sy, sx) = (y - dy, x - dx);
        if sy < 0 || sx < 0 || sy >= h as i32 || sx >= w as i32 {
            0.0
        } else {
            image.get(&[ch, sy as usize, sx as usize])
        }
    })
}

/// Rotates a `[c, h, w]` image around its centre by `degrees`
/// (nearest-neighbour resampling, zero padding).
///
/// # Panics
///
/// Panics when `image` is not rank 3.
pub fn rotate(image: &Tensor, degrees: f32) -> Tensor {
    assert_eq!(image.rank(), 3, "rotate expects [c, h, w]");
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let (sin_a, cos_a) = degrees.to_radians().sin_cos();
    let (cy, cx) = ((h as f32 - 1.0) / 2.0, (w as f32 - 1.0) / 2.0);
    Tensor::from_fn([c, h, w], |idx| {
        let (ch, y, x) = (idx[0], idx[1] as f32, idx[2] as f32);
        // Inverse rotation: sample source location.
        let sy = cos_a * (y - cy) + sin_a * (x - cx) + cy;
        let sx = -sin_a * (y - cy) + cos_a * (x - cx) + cx;
        let (sy, sx) = (sy.round() as i32, sx.round() as i32);
        if sy < 0 || sx < 0 || sy >= h as i32 || sx >= w as i32 {
            0.0
        } else {
            image.get(&[ch, sy as usize, sx as usize])
        }
    })
}

/// Mirrors a `[c, h, w]` image left–right.
///
/// # Panics
///
/// Panics when `image` is not rank 3.
pub fn hflip(image: &Tensor) -> Tensor {
    assert_eq!(image.rank(), 3, "hflip expects [c, h, w]");
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    Tensor::from_fn([c, h, w], |idx| {
        image.get(&[idx[0], idx[1], w - 1 - idx[2]])
    })
}

/// A stochastic augmentation recipe applied independently per image.
///
/// The constructors mirror the paper's per-dataset policies.
///
/// # Examples
///
/// ```
/// use qcn_datasets::augment::AugmentPolicy;
///
/// let p = AugmentPolicy::mnist();
/// assert_eq!(p.max_shift, 2);
/// assert_eq!(p.hflip_prob, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentPolicy {
    /// Maximum absolute shift in pixels (uniform in `[-max, max]`).
    pub max_shift: i32,
    /// Maximum absolute rotation in degrees.
    pub max_rotate_deg: f32,
    /// Probability of a horizontal flip.
    pub hflip_prob: f32,
}

impl AugmentPolicy {
    /// MNIST recipe: shift ≤ 2 px, rotate ≤ 2°, no flips.
    pub fn mnist() -> Self {
        AugmentPolicy {
            max_shift: 2,
            max_rotate_deg: 2.0,
            hflip_prob: 0.0,
        }
    }

    /// Fashion-MNIST recipe: shift ≤ 2 px, flip with probability 0.2.
    pub fn fashion_mnist() -> Self {
        AugmentPolicy {
            max_shift: 2,
            max_rotate_deg: 0.0,
            hflip_prob: 0.2,
        }
    }

    /// CIFAR10 recipe: shift, rotate ≤ 2°, flip with probability 0.5.
    ///
    /// The paper shifts by 5 px after resizing to 64×64; at our 16×16 scale
    /// the proportional shift is ~1 px, kept at 2 px for comparable
    /// variation.
    pub fn cifar10() -> Self {
        AugmentPolicy {
            max_shift: 2,
            max_rotate_deg: 2.0,
            hflip_prob: 0.5,
        }
    }

    /// No augmentation (identity).
    pub fn none() -> Self {
        AugmentPolicy {
            max_shift: 0,
            max_rotate_deg: 0.0,
            hflip_prob: 0.0,
        }
    }

    /// Applies the policy to one `[c, h, w]` image.
    pub fn apply(&self, image: &Tensor, rng: &mut impl Rng) -> Tensor {
        let mut out = image.clone();
        if self.max_shift > 0 {
            let dx = rng.gen_range(-self.max_shift..=self.max_shift);
            let dy = rng.gen_range(-self.max_shift..=self.max_shift);
            if dx != 0 || dy != 0 {
                out = shift(&out, dx, dy);
            }
        }
        if self.max_rotate_deg > 0.0 {
            let deg = rng.gen_range(-self.max_rotate_deg..=self.max_rotate_deg);
            if deg.abs() > 0.01 {
                out = rotate(&out, deg);
            }
        }
        if self.hflip_prob > 0.0 && rng.gen_range(0.0f32..1.0) < self.hflip_prob {
            out = hflip(&out);
        }
        out
    }

    /// Applies the policy independently to every image of an `[n, c, h, w]`
    /// batch.
    ///
    /// # Panics
    ///
    /// Panics when `batch` is not rank 4.
    pub fn apply_batch(&self, batch: &Tensor, rng: &mut impl Rng) -> Tensor {
        assert_eq!(batch.rank(), 4, "apply_batch expects [n, c, h, w]");
        if *self == AugmentPolicy::none() {
            return batch.clone();
        }
        let (n, c, h, w) = (
            batch.dims()[0],
            batch.dims()[1],
            batch.dims()[2],
            batch.dims()[3],
        );
        let stride = c * h * w;
        let mut data = Vec::with_capacity(n * stride);
        for i in 0..n {
            let img = Tensor::from_vec(
                batch.data()[i * stride..(i + 1) * stride].to_vec(),
                [c, h, w],
            )
            .expect("batch slice matches dims");
            data.extend_from_slice(self.apply(&img, rng).data());
        }
        Tensor::from_vec(data, [n, c, h, w]).expect("augmented size matches dims")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Tensor {
        Tensor::from_fn([1, 4, 4], |i| (i[1] * 4 + i[2]) as f32)
    }

    #[test]
    fn shift_moves_content() {
        let img = sample();
        let s = shift(&img, 1, 0);
        assert_eq!(s.get(&[0, 0, 1]), img.get(&[0, 0, 0]));
        assert_eq!(s.get(&[0, 0, 0]), 0.0); // zero padded
        let s = shift(&img, 0, -1);
        assert_eq!(s.get(&[0, 0, 0]), img.get(&[0, 1, 0]));
        assert_eq!(s.get(&[0, 3, 0]), 0.0);
    }

    #[test]
    fn zero_shift_is_identity() {
        let img = sample();
        assert_eq!(shift(&img, 0, 0), img);
    }

    #[test]
    fn hflip_is_involution() {
        let img = sample();
        assert_eq!(hflip(&hflip(&img)), img);
        assert_eq!(hflip(&img).get(&[0, 0, 0]), img.get(&[0, 0, 3]));
    }

    #[test]
    fn rotate_zero_is_identity() {
        let img = sample();
        assert_eq!(rotate(&img, 0.0), img);
    }

    #[test]
    fn rotate_90_moves_corners() {
        // A single bright pixel rotates to a predictable place.
        let mut img = Tensor::zeros([1, 5, 5]);
        img.set(&[0, 0, 2], 1.0); // top centre
        let r = rotate(&img, 90.0);
        // 90° (counter-clockwise in image coordinates here) moves top-centre
        // to a side-centre; content must be preserved somewhere.
        assert_eq!(r.sum(), 1.0);
        assert_eq!(r.get(&[0, 0, 2]), 0.0);
    }

    #[test]
    fn policy_none_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let img = sample();
        assert_eq!(AugmentPolicy::none().apply(&img, &mut rng), img);
    }

    #[test]
    fn policy_apply_batch_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let batch = Tensor::from_fn([3, 1, 4, 4], |i| i[0] as f32);
        let out = AugmentPolicy::cifar10().apply_batch(&batch, &mut rng);
        assert_eq!(out.dims(), batch.dims());
    }

    #[test]
    fn policy_is_stochastic_but_seeded() {
        let batch = Tensor::from_fn([2, 1, 8, 8], |i| ((i[2] + i[3]) % 2) as f32);
        let a = AugmentPolicy::mnist().apply_batch(&batch, &mut StdRng::seed_from_u64(5));
        let b = AugmentPolicy::mnist().apply_batch(&batch, &mut StdRng::seed_from_u64(5));
        let c = AugmentPolicy::mnist().apply_batch(&batch, &mut StdRng::seed_from_u64(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mnist_policy_never_flips() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(AugmentPolicy::mnist().hflip_prob, 0.0);
        // Asymmetric image: flipping would be detectable; run many times.
        let mut img = Tensor::zeros([1, 4, 4]);
        img.set(&[0, 0, 0], 1.0);
        for _ in 0..20 {
            let out = AugmentPolicy {
                max_shift: 0,
                max_rotate_deg: 0.0,
                hflip_prob: 0.0,
            }
            .apply(&img, &mut rng);
            assert_eq!(out, img);
        }
    }
}
