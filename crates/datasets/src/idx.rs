//! Loader for the IDX binary format used by the real MNIST and
//! Fashion-MNIST distributions.
//!
//! The synthetic generators in [`crate::SynthKind`] are the default data
//! source (see DESIGN.md §3), but when the real `*-images-idx3-ubyte` /
//! `*-labels-idx1-ubyte` files are available this module loads them into
//! the same [`Dataset`] type, so every experiment can be re-run on real
//! data unchanged.

use crate::Dataset;
use qcn_tensor::Tensor;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Error raised while parsing IDX files.
#[derive(Debug)]
#[non_exhaustive]
pub enum IdxError {
    /// Underlying file I/O failure.
    Io(io::Error),
    /// The file's magic number or dimensions are malformed.
    Malformed(String),
    /// Image and label files disagree on the sample count.
    CountMismatch {
        /// Samples in the image file.
        images: usize,
        /// Samples in the label file.
        labels: usize,
    },
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "idx file i/o failed: {e}"),
            IdxError::Malformed(msg) => write!(f, "malformed idx file: {msg}"),
            IdxError::CountMismatch { images, labels } => write!(
                f,
                "image count {images} does not match label count {labels}"
            ),
        }
    }
}

impl Error for IdxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IdxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IdxError {
    fn from(e: io::Error) -> Self {
        IdxError::Io(e)
    }
}

fn read_u32(bytes: &[u8], offset: usize) -> Result<u32, IdxError> {
    bytes
        .get(offset..offset + 4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| IdxError::Malformed("truncated header".into()))
}

/// Parses an `idx3-ubyte` image buffer into `(images [n,1,h,w], n, h, w)`.
/// Pixels are scaled to `[0, 1]`.
pub fn parse_idx3_images(bytes: &[u8]) -> Result<Tensor, IdxError> {
    let magic = read_u32(bytes, 0)?;
    if magic != 0x0000_0803 {
        return Err(IdxError::Malformed(format!(
            "bad image magic 0x{magic:08x}, expected 0x00000803"
        )));
    }
    let n = read_u32(bytes, 4)? as usize;
    let h = read_u32(bytes, 8)? as usize;
    let w = read_u32(bytes, 12)? as usize;
    let expected = 16 + n * h * w;
    if bytes.len() < expected {
        return Err(IdxError::Malformed(format!(
            "image payload too short: {} < {expected}",
            bytes.len()
        )));
    }
    let data: Vec<f32> = bytes[16..expected]
        .iter()
        .map(|&b| b as f32 / 255.0)
        .collect();
    Tensor::from_vec(data, [n, 1, h, w])
        .map_err(|e| IdxError::Malformed(format!("tensor construction failed: {e}")))
}

/// Parses an `idx1-ubyte` label buffer into class indices.
pub fn parse_idx1_labels(bytes: &[u8]) -> Result<Vec<usize>, IdxError> {
    let magic = read_u32(bytes, 0)?;
    if magic != 0x0000_0801 {
        return Err(IdxError::Malformed(format!(
            "bad label magic 0x{magic:08x}, expected 0x00000801"
        )));
    }
    let n = read_u32(bytes, 4)? as usize;
    let expected = 8 + n;
    if bytes.len() < expected {
        return Err(IdxError::Malformed(format!(
            "label payload too short: {} < {expected}",
            bytes.len()
        )));
    }
    Ok(bytes[8..expected].iter().map(|&b| b as usize).collect())
}

/// Loads a dataset from a pair of IDX files on disk.
///
/// # Errors
///
/// Returns [`IdxError`] on I/O failures, malformed headers, or mismatched
/// image/label counts.
pub fn load_idx(
    images_path: impl AsRef<Path>,
    labels_path: impl AsRef<Path>,
    num_classes: usize,
) -> Result<Dataset, IdxError> {
    let images = parse_idx3_images(&fs::read(images_path)?)?;
    let labels = parse_idx1_labels(&fs::read(labels_path)?)?;
    if images.dims()[0] != labels.len() {
        return Err(IdxError::CountMismatch {
            images: images.dims()[0],
            labels: labels.len(),
        });
    }
    Dataset::new(images, labels, num_classes)
        .map_err(|e| IdxError::Malformed(format!("dataset construction failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_idx3(n: usize, h: usize, w: usize) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        bytes.extend_from_slice(&(n as u32).to_be_bytes());
        bytes.extend_from_slice(&(h as u32).to_be_bytes());
        bytes.extend_from_slice(&(w as u32).to_be_bytes());
        for i in 0..n * h * w {
            bytes.push((i % 256) as u8);
        }
        bytes
    }

    fn fake_idx1(labels: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        bytes.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        bytes.extend_from_slice(labels);
        bytes
    }

    #[test]
    fn parse_images_scales_to_unit_range() {
        let t = parse_idx3_images(&fake_idx3(2, 3, 3)).unwrap();
        assert_eq!(t.dims(), &[2, 1, 3, 3]);
        assert_eq!(t.get(&[0, 0, 0, 0]), 0.0);
        assert!((t.get(&[0, 0, 0, 1]) - 1.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn parse_labels_roundtrip() {
        let labels = parse_idx1_labels(&fake_idx1(&[3, 1, 4, 1, 5])).unwrap();
        assert_eq!(labels, vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut bytes = fake_idx3(1, 2, 2);
        bytes[3] = 0x99;
        assert!(matches!(
            parse_idx3_images(&bytes),
            Err(IdxError::Malformed(_))
        ));
        let mut bytes = fake_idx1(&[0]);
        bytes[3] = 0x55;
        assert!(matches!(
            parse_idx1_labels(&bytes),
            Err(IdxError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut bytes = fake_idx3(4, 5, 5);
        bytes.truncate(bytes.len() - 10);
        assert!(matches!(
            parse_idx3_images(&bytes),
            Err(IdxError::Malformed(_))
        ));
    }

    #[test]
    fn load_idx_detects_count_mismatch() {
        use std::io::Write;
        let dir = std::env::temp_dir().join("qcn_idx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let img_path = dir.join("images");
        let lbl_path = dir.join("labels");
        std::fs::File::create(&img_path)
            .unwrap()
            .write_all(&fake_idx3(3, 2, 2))
            .unwrap();
        std::fs::File::create(&lbl_path)
            .unwrap()
            .write_all(&fake_idx1(&[0, 1]))
            .unwrap();
        assert!(matches!(
            load_idx(&img_path, &lbl_path, 10),
            Err(IdxError::CountMismatch {
                images: 3,
                labels: 2
            })
        ));
    }

    #[test]
    fn load_idx_happy_path() {
        use std::io::Write;
        let dir = std::env::temp_dir().join("qcn_idx_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let img_path = dir.join("images");
        let lbl_path = dir.join("labels");
        std::fs::File::create(&img_path)
            .unwrap()
            .write_all(&fake_idx3(2, 4, 4))
            .unwrap();
        std::fs::File::create(&lbl_path)
            .unwrap()
            .write_all(&fake_idx1(&[7, 2]))
            .unwrap();
        let ds = load_idx(&img_path, &lbl_path, 10).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.labels(), &[7, 2]);
        assert_eq!(ds.image_dims(), (1, 4, 4));
    }
}
