//! Dataset statistics: class balance, pixel moments, and per-class mean
//! images. Used by tests to validate the synthetic generators and by the
//! examples for reporting.

use crate::Dataset;
use qcn_tensor::Tensor;

/// Summary statistics of a labelled image dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Samples per class.
    pub class_counts: Vec<usize>,
    /// Mean pixel value over the whole dataset.
    pub pixel_mean: f32,
    /// Pixel standard deviation over the whole dataset.
    pub pixel_std: f32,
    /// Minimum pixel value.
    pub pixel_min: f32,
    /// Maximum pixel value.
    pub pixel_max: f32,
}

impl DatasetStats {
    /// Computes statistics over `dataset`.
    ///
    /// # Panics
    ///
    /// Panics when the dataset is empty.
    pub fn measure(dataset: &Dataset) -> Self {
        assert!(!dataset.is_empty(), "statistics of an empty dataset");
        let mut class_counts = vec![0usize; dataset.num_classes()];
        for &label in dataset.labels() {
            class_counts[label] += 1;
        }
        let data = dataset.images().data();
        let n = data.len() as f32;
        let mean = data.iter().sum::<f32>() / n;
        let var = data.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
        DatasetStats {
            class_counts,
            pixel_mean: mean,
            pixel_std: var.sqrt(),
            pixel_min: data.iter().cloned().fold(f32::INFINITY, f32::min),
            pixel_max: data.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
        }
    }

    /// Largest relative class imbalance: `max_count / min_count`.
    /// 1.0 means perfectly balanced; `f32::INFINITY` when a class is empty.
    pub fn imbalance(&self) -> f32 {
        let max = *self.class_counts.iter().max().expect("non-empty") as f32;
        let min = *self.class_counts.iter().min().expect("non-empty") as f32;
        if min == 0.0 {
            f32::INFINITY
        } else {
            max / min
        }
    }
}

/// Mean image of one class, `[c, h, w]`.
///
/// # Panics
///
/// Panics when `class` is out of range or has no samples.
pub fn class_mean_image(dataset: &Dataset, class: usize) -> Tensor {
    assert!(class < dataset.num_classes(), "class out of range");
    let indices: Vec<usize> = dataset
        .labels()
        .iter()
        .enumerate()
        .filter(|(_, &l)| l == class)
        .map(|(i, _)| i)
        .collect();
    assert!(!indices.is_empty(), "class {class} has no samples");
    let (c, h, w) = dataset.image_dims();
    let mut acc = Tensor::zeros([c, h, w]);
    for &i in &indices {
        acc = &acc + &dataset.image(i);
    }
    &acc * (1.0 / indices.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthKind;

    #[test]
    fn synthetic_datasets_are_balanced_and_in_range() {
        for kind in [
            SynthKind::Mnist,
            SynthKind::FashionMnist,
            SynthKind::Cifar10,
        ] {
            let ds = kind.generate(100, 3);
            let stats = DatasetStats::measure(&ds);
            assert_eq!(stats.imbalance(), 1.0, "{kind}");
            assert!(stats.pixel_min >= 0.0, "{kind}");
            assert!(stats.pixel_max <= 1.0, "{kind}");
            assert!(stats.pixel_std > 0.05, "{kind} has no content");
        }
    }

    #[test]
    fn class_mean_images_differ_between_classes() {
        let ds = SynthKind::Mnist.generate(200, 1);
        let m0 = class_mean_image(&ds, 0);
        let m1 = class_mean_image(&ds, 1);
        assert!((&m0 - &m1).norm() > 0.5, "class means should be distinct");
    }

    #[test]
    fn mean_image_is_average_of_members() {
        let ds = SynthKind::Mnist.generate(20, 2);
        let m = class_mean_image(&ds, 3);
        // Class 3 appears at indices 3 and 13.
        let manual = &(&ds.image(3) + &ds.image(13)) * 0.5;
        assert!((&m - &manual).max_abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn mean_image_rejects_bad_class() {
        let ds = SynthKind::Mnist.generate(10, 0);
        class_mean_image(&ds, 10);
    }
}
