//! # qcn-datasets
//!
//! Dataset substrate for the Q-CapsNets reproduction (Marchisio et al.,
//! DAC 2020): deterministic procedural stand-ins for MNIST, Fashion-MNIST
//! and CIFAR10 ([`SynthKind`]), the paper's data-augmentation recipes
//! ([`augment::AugmentPolicy`]), batching utilities, and an IDX loader
//! ([`idx::load_idx`]) for running the same experiments on the real
//! datasets when available.
//!
//! See DESIGN.md §3 for why procedural data preserves the behaviour the
//! quantization framework depends on.
//!
//! # Examples
//!
//! ```
//! use qcn_datasets::{shuffled_batches, SynthKind};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let (train, test) = SynthKind::Mnist.train_test(100, 40, 42);
//! let mut rng = StdRng::seed_from_u64(0);
//! for batch in shuffled_batches(train.len(), 16, &mut rng) {
//!     let (images, labels) = train.batch(&batch);
//!     assert_eq!(images.dims()[0], labels.len());
//! }
//! assert_eq!(test.num_classes(), 10);
//! ```

#![warn(missing_docs)]

pub mod augment;
mod dataset;
pub mod idx;
pub mod stats;
mod synth;

pub use dataset::{one_hot, shuffled_batches, Dataset};
pub use synth::SynthKind;
