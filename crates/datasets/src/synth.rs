//! Procedural synthetic datasets standing in for MNIST, Fashion-MNIST and
//! CIFAR10 (see DESIGN.md §3, substitution 1).
//!
//! Each class is a parametric glyph rendered from a signed-distance
//! function with per-sample jitter (translation, rotation, stroke width,
//! scale, pixel noise), so the task has genuine intra-class variation and
//! is learnable — but not trivially — by a small CapsNet:
//!
//! * [`SynthKind::Mnist`] — thin stroke glyphs on a black background
//!   (easiest, like handwritten digits).
//! * [`SynthKind::FashionMnist`] — *filled, textured* versions of the same
//!   ten silhouettes (harder, like clothing photos).
//! * [`SynthKind::Cifar10`] — three-channel renderings with class-dependent
//!   colour, coloured backgrounds and stronger noise (hardest).

use crate::Dataset;
use qcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Which synthetic dataset family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthKind {
    /// Stroke glyphs, 1×16×16 — stands in for MNIST.
    Mnist,
    /// Filled textured silhouettes, 1×16×16 — stands in for Fashion-MNIST.
    FashionMnist,
    /// Coloured glyphs on coloured noise, 3×16×16 — stands in for CIFAR10.
    Cifar10,
}

impl SynthKind {
    /// Image side length (square images).
    pub const SIDE: usize = 16;
    /// Number of classes in every family.
    pub const CLASSES: usize = 10;

    /// Number of colour channels.
    pub fn channels(&self) -> usize {
        match self {
            SynthKind::Mnist | SynthKind::FashionMnist => 1,
            SynthKind::Cifar10 => 3,
        }
    }

    /// Generates `n` labelled samples with balanced classes, deterministic
    /// in `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        assert!(n > 0, "cannot generate an empty dataset");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51c0_ffee);
        let c = self.channels();
        let side = Self::SIDE;
        let mut data = Vec::with_capacity(n * c * side * side);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % Self::CLASSES;
            let img = render_sample(*self, class, &mut rng);
            data.extend_from_slice(img.data());
            labels.push(class);
        }
        let images =
            Tensor::from_vec(data, [n, c, side, side]).expect("rendered size matches dims");
        Dataset::new(images, labels, Self::CLASSES).expect("labels match images")
    }

    /// Convenience: disjoint train/test split (`n_train`, `n_test`) using
    /// derived seeds.
    pub fn train_test(&self, n_train: usize, n_test: usize, seed: u64) -> (Dataset, Dataset) {
        (
            self.generate(n_train, seed.wrapping_mul(2).wrapping_add(1)),
            self.generate(n_test, seed.wrapping_mul(2).wrapping_add(2)),
        )
    }
}

impl fmt::Display for SynthKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SynthKind::Mnist => "synth-MNIST",
            SynthKind::FashionMnist => "synth-FashionMNIST",
            SynthKind::Cifar10 => "synth-CIFAR10",
        };
        f.write_str(name)
    }
}

/// Per-sample render jitter, drawn once per image.
struct Jitter {
    dx: f32,
    dy: f32,
    angle: f32,
    scale: f32,
    thickness: f32,
}

impl Jitter {
    fn draw(rng: &mut impl Rng, hard: bool) -> Self {
        let wobble = if hard { 1.4 } else { 1.0 };
        Jitter {
            dx: rng.gen_range(-0.18f32..0.18) * wobble,
            dy: rng.gen_range(-0.18f32..0.18) * wobble,
            angle: rng.gen_range(-0.3f32..0.3) * wobble,
            scale: rng.gen_range(0.75..1.1),
            thickness: rng.gen_range(0.08..0.16),
        }
    }
}

/// Distance from point `(px, py)` to the segment `(ax, ay)–(bx, by)`.
fn segment_dist(px: f32, py: f32, ax: f32, ay: f32, bx: f32, by: f32) -> f32 {
    let (vx, vy) = (bx - ax, by - ay);
    let (wx, wy) = (px - ax, py - ay);
    let t = ((wx * vx + wy * vy) / (vx * vx + vy * vy + 1e-9)).clamp(0.0, 1.0);
    let (cx, cy) = (ax + t * vx, ay + t * vy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

/// Signed distance of the class glyph at centred coordinates `(u, v)` ∈
/// roughly [−1, 1]². Negative inside the stroke/fill.
fn glyph_sdf(class: usize, u: f32, v: f32, t: f32, filled: bool) -> f32 {
    let seg = |a: (f32, f32), b: (f32, f32)| segment_dist(u, v, a.0, a.1, b.0, b.1) - t;
    let r = (u * u + v * v).sqrt();
    let d = match class {
        // 0: circle (ring or disc)
        0 => {
            if filled {
                r - 0.6
            } else {
                (r - 0.55).abs() - t
            }
        }
        // 1: vertical bar
        1 => {
            if filled {
                u.abs().max(v.abs() - 0.65) - 0.22
            } else {
                seg((0.0, -0.65), (0.0, 0.65))
            }
        }
        // 2: horizontal bar
        2 => {
            if filled {
                v.abs().max(u.abs() - 0.65) - 0.22
            } else {
                seg((-0.65, 0.0), (0.65, 0.0))
            }
        }
        // 3: rising diagonal /
        3 => seg((-0.55, 0.55), (0.55, -0.55)),
        // 4: falling diagonal \
        4 => seg((-0.55, -0.55), (0.55, 0.55)),
        // 5: plus +
        5 => seg((0.0, -0.6), (0.0, 0.6)).min(seg((-0.6, 0.0), (0.6, 0.0))),
        // 6: X
        6 => seg((-0.5, -0.5), (0.5, 0.5)).min(seg((-0.5, 0.5), (0.5, -0.5))),
        // 7: square (outline or solid)
        7 => {
            let box_d = u.abs().max(v.abs()) - 0.5;
            if filled {
                box_d
            } else {
                box_d.abs() - t
            }
        }
        // 8: two horizontal bars
        8 => seg((-0.55, -0.35), (0.55, -0.35)).min(seg((-0.55, 0.35), (0.55, 0.35))),
        // 9: T shape
        9 => seg((-0.55, -0.5), (0.55, -0.5)).min(seg((0.0, -0.5), (0.0, 0.6))),
        _ => panic!("class {class} out of range"),
    };
    // Filled variants of pure-stroke glyphs get a thicker body.
    if filled && ((3..=6).contains(&class) || (8..=9).contains(&class)) {
        d - 0.12
    } else {
        d
    }
}

/// Renders one sample of `kind`/`class` as a `[c, h, w]` tensor in [0, 1].
fn render_sample(kind: SynthKind, class: usize, rng: &mut impl Rng) -> Tensor {
    let side = SynthKind::SIDE;
    let hard = kind == SynthKind::Cifar10;
    let jit = Jitter::draw(rng, hard);
    let filled = kind != SynthKind::Mnist;
    let (sin_a, cos_a) = jit.angle.sin_cos();
    // Texture parameters (FashionMNIST / CIFAR10 only).
    let tex_freq = rng.gen_range(6.0..12.0f32);
    let tex_phase = rng.gen_range(0.0..std::f32::consts::TAU);
    // CIFAR colour: class-dependent hue with jitter.
    let hue = (class as f32 / 10.0 + rng.gen_range(-0.04f32..0.04)).rem_euclid(1.0);
    let fg = hue_to_rgb(hue);
    let bg = hue_to_rgb((hue + rng.gen_range(0.3f32..0.7)).rem_euclid(1.0));
    let bg_level = if hard { rng.gen_range(0.1..0.35) } else { 0.0 };
    let noise_amp: f32 = match kind {
        SynthKind::Mnist => 0.02,
        SynthKind::FashionMnist => 0.05,
        SynthKind::Cifar10 => 0.10,
    };

    let channels = kind.channels();
    let mut img = Tensor::zeros([channels, side, side]);
    for py in 0..side {
        for px in 0..side {
            // Centred, jittered, rotated, scaled coordinates.
            let x = (px as f32 + 0.5) / side as f32 * 2.0 - 1.0 - jit.dx;
            let y = (py as f32 + 0.5) / side as f32 * 2.0 - 1.0 - jit.dy;
            let u = (cos_a * x + sin_a * y) / jit.scale;
            let v = (-sin_a * x + cos_a * y) / jit.scale;
            let d = glyph_sdf(class, u, v, jit.thickness, filled);
            // Soft edge: intensity 1 inside, 0 outside, ~1.5px transition.
            let edge = 1.5 / side as f32 * 2.0;
            let mut intensity = (0.5 - d / edge).clamp(0.0, 1.0);
            if filled && intensity > 0.0 {
                // Stripe texture modulation.
                let stripe = 0.7 + 0.3 * (tex_freq * (u + 0.6 * v) + tex_phase).sin();
                intensity *= stripe;
            }
            for c in 0..channels {
                let fgc = if channels == 3 { fg[c] } else { 1.0 };
                let bgc = if channels == 3 { bg[c] * bg_level } else { 0.0 };
                let value = bgc * (1.0 - intensity)
                    + fgc * intensity
                    + rng.gen_range(-noise_amp..noise_amp);
                img.set(&[c, py, px], value.clamp(0.0, 1.0));
            }
        }
    }
    img
}

/// Simple hue → RGB (full saturation/value), for the CIFAR10 stand-in.
fn hue_to_rgb(h: f32) -> [f32; 3] {
    let h6 = h * 6.0;
    let x = 1.0 - (h6.rem_euclid(2.0) - 1.0).abs();
    match h6 as usize % 6 {
        0 => [1.0, x, 0.0],
        1 => [x, 1.0, 0.0],
        2 => [0.0, 1.0, x],
        3 => [0.0, x, 1.0],
        4 => [x, 0.0, 1.0],
        _ => [1.0, 0.0, x],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SynthKind::Mnist.generate(20, 3);
        let b = SynthKind::Mnist.generate(20, 3);
        assert_eq!(a.images(), b.images());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthKind::Mnist.generate(20, 3);
        let b = SynthKind::Mnist.generate(20, 4);
        assert_ne!(a.images(), b.images());
    }

    #[test]
    fn classes_are_balanced() {
        let ds = SynthKind::FashionMnist.generate(100, 0);
        for class in 0..10 {
            assert_eq!(
                ds.labels().iter().filter(|&&l| l == class).count(),
                10,
                "class {class}"
            );
        }
    }

    #[test]
    fn pixel_values_in_unit_range() {
        for kind in [
            SynthKind::Mnist,
            SynthKind::FashionMnist,
            SynthKind::Cifar10,
        ] {
            let ds = kind.generate(30, 1);
            assert!(
                ds.images().data().iter().all(|&x| (0.0..=1.0).contains(&x)),
                "{kind}"
            );
        }
    }

    #[test]
    fn cifar_has_three_channels() {
        let ds = SynthKind::Cifar10.generate(10, 2);
        assert_eq!(ds.image_dims(), (3, 16, 16));
        assert_eq!(SynthKind::Mnist.generate(10, 2).image_dims(), (1, 16, 16));
    }

    #[test]
    fn glyphs_have_nontrivial_content() {
        // Every rendered image must have some bright and some dark pixels.
        let ds = SynthKind::Mnist.generate(40, 5);
        for i in 0..ds.len() {
            let img = ds.image(i);
            assert!(img.max_abs() > 0.4, "sample {i} too dark");
            assert!(img.mean() < 0.6, "sample {i} too bright");
        }
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean intra-class pixel distance must be below mean inter-class
        // distance — otherwise the task would be unlearnable.
        let ds = SynthKind::Mnist.generate(200, 8);
        let dist = |a: &Tensor, b: &Tensor| -> f32 { (a - b).norm() };
        let (mut intra, mut inter) = (0.0f32, 0.0f32);
        let (mut n_intra, mut n_inter) = (0, 0);
        for i in 0..60 {
            for j in (i + 1)..60 {
                let d = dist(&ds.image(i), &ds.image(j));
                if ds.labels()[i] == ds.labels()[j] {
                    intra += d;
                    n_intra += 1;
                } else {
                    inter += d;
                    n_inter += 1;
                }
            }
        }
        let (intra, inter) = (intra / n_intra as f32, inter / n_inter as f32);
        assert!(
            intra < inter,
            "intra-class distance {intra} ≥ inter-class {inter}"
        );
    }

    #[test]
    fn train_test_split_is_disjoint() {
        let (train, test) = SynthKind::Mnist.train_test(30, 30, 9);
        assert_ne!(train.images(), test.images());
    }

    #[test]
    fn hue_to_rgb_is_saturated() {
        for i in 0..12 {
            let rgb = hue_to_rgb(i as f32 / 12.0);
            let max = rgb.iter().cloned().fold(0.0f32, f32::max);
            assert!((max - 1.0).abs() < 1e-6);
        }
    }
}
