//! The in-memory labelled image dataset used for training and evaluation.

use qcn_tensor::{Tensor, TensorError};
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled image classification dataset held fully in memory.
///
/// Images are stored as one `[n, c, h, w]` tensor; labels are class indices
/// `0..num_classes`.
///
/// # Examples
///
/// ```
/// use qcn_datasets::{Dataset, SynthKind};
///
/// let ds = SynthKind::Mnist.generate(32, 7);
/// assert_eq!(ds.len(), 32);
/// assert_eq!(ds.num_classes(), 10);
/// let (images, labels) = ds.batch(&[0, 5, 9]);
/// assert_eq!(images.dims()[0], 3);
/// assert_eq!(labels.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from an `[n, c, h, w]` image tensor and labels.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError::LengthMismatch`] when the label count does
    /// not match the image count.
    ///
    /// # Panics
    ///
    /// Panics when `images` is not rank 4, `num_classes` is zero, or a
    /// label is out of range.
    pub fn new(
        images: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Dataset, TensorError> {
        assert_eq!(images.rank(), 4, "images must be [n, c, h, w]");
        assert!(num_classes > 0, "num_classes must be positive");
        if images.dims()[0] != labels.len() {
            return Err(TensorError::LengthMismatch {
                expected: images.dims()[0],
                actual: labels.len(),
            });
        }
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Ok(Dataset {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image dimensions `(c, h, w)`.
    pub fn image_dims(&self) -> (usize, usize, usize) {
        (
            self.images.dims()[1],
            self.images.dims()[2],
            self.images.dims()[3],
        )
    }

    /// The full image tensor `[n, c, h, w]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies one image as a `[c, h, w]` tensor.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn image(&self, index: usize) -> Tensor {
        let (c, h, w) = self.image_dims();
        let stride = c * h * w;
        Tensor::from_vec(
            self.images.data()[index * stride..(index + 1) * stride].to_vec(),
            [c, h, w],
        )
        .expect("image slice matches dims")
    }

    /// Gathers the images and labels at `indices` into a batch.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let (c, h, w) = self.image_dims();
        let stride = c * h * w;
        let mut data = Vec::with_capacity(indices.len() * stride);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images.data()[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(data, [indices.len(), c, h, w]).expect("batch slice matches dims"),
            labels,
        )
    }

    /// Keeps only the first `n` samples (useful for fast search loops).
    ///
    /// # Panics
    ///
    /// Panics when `n > self.len()`.
    pub fn truncate(&self, n: usize) -> Dataset {
        assert!(n <= self.len(), "cannot truncate {} to {n}", self.len());
        let (images, labels) = self.batch(&(0..n).collect::<Vec<_>>());
        Dataset {
            images,
            labels,
            num_classes: self.num_classes,
        }
    }
}

/// Encodes labels as a one-hot `[batch, num_classes]` tensor, as the margin
/// loss expects.
///
/// # Panics
///
/// Panics when any label is `>= num_classes`.
pub fn one_hot(labels: &[usize], num_classes: usize) -> Tensor {
    let mut t = Tensor::zeros([labels.len(), num_classes]);
    for (row, &label) in labels.iter().enumerate() {
        assert!(label < num_classes, "label {label} out of range");
        t.set(&[row, label], 1.0);
    }
    t
}

/// Produces shuffled mini-batch index lists covering `0..len` once.
///
/// The final batch may be smaller than `batch_size`.
///
/// # Panics
///
/// Panics when `batch_size == 0`.
pub fn shuffled_batches(len: usize, batch_size: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut indices: Vec<usize> = (0..len).collect();
    indices.shuffle(rng);
    indices
        .chunks(batch_size)
        .map(|chunk| chunk.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Dataset {
        let images = Tensor::from_fn([4, 1, 2, 2], |i| i[0] as f32);
        Dataset::new(images, vec![0, 1, 2, 1], 3).unwrap()
    }

    #[test]
    fn new_validates_label_count() {
        let images = Tensor::zeros([4, 1, 2, 2]);
        assert!(Dataset::new(images, vec![0; 3], 3).is_err());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn new_rejects_out_of_range_labels() {
        let images = Tensor::zeros([2, 1, 2, 2]);
        let _ = Dataset::new(images, vec![0, 5], 3);
    }

    #[test]
    fn image_extracts_correct_sample() {
        let ds = tiny();
        assert!(ds.image(2).data().iter().all(|&x| x == 2.0));
        assert_eq!(ds.image(2).dims(), &[1, 2, 2]);
    }

    #[test]
    fn batch_gathers_in_order() {
        let ds = tiny();
        let (images, labels) = ds.batch(&[3, 0]);
        assert_eq!(images.dims(), &[2, 1, 2, 2]);
        assert_eq!(labels, vec![1, 0]);
        assert!(images.data()[..4].iter().all(|&x| x == 3.0));
    }

    #[test]
    fn truncate_keeps_prefix() {
        let ds = tiny();
        let t = ds.truncate(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.labels(), &[0, 1]);
        assert_eq!(t.num_classes(), 3);
    }

    #[test]
    fn one_hot_rows_sum_to_one() {
        let t = one_hot(&[2, 0], 4);
        assert_eq!(t.dims(), &[2, 4]);
        assert_eq!(t.get(&[0, 2]), 1.0);
        assert_eq!(t.get(&[1, 0]), 1.0);
        assert_eq!(t.sum(), 2.0);
    }

    #[test]
    fn shuffled_batches_cover_everything_once() {
        let mut rng = StdRng::seed_from_u64(0);
        let batches = shuffled_batches(10, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[3].len(), 1);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_batches_are_shuffled() {
        let mut rng = StdRng::seed_from_u64(1);
        let flat: Vec<usize> = shuffled_batches(100, 100, &mut rng).remove(0);
        assert_ne!(flat, (0..100).collect::<Vec<_>>());
    }
}
