//! The trained-model zoo backing the paper-reproduction benches: every
//! (architecture × dataset) pair of Table I, trained once and cached on
//! disk.

use crate::cache::cached_model;
use qcn_capsnet::{
    train, CapsNet, DeepCaps, DeepCapsConfig, ShallowCaps, ShallowCapsConfig, TrainConfig,
};
use qcn_datasets::augment::AugmentPolicy;
use qcn_datasets::{Dataset, SynthKind};

/// Training-set size used throughout the benches.
pub const TRAIN_SAMPLES: usize = 2000;
/// Test/evaluation-set size used throughout the benches.
pub const TEST_SAMPLES: usize = 500;

fn policy_for(kind: SynthKind) -> AugmentPolicy {
    match kind {
        SynthKind::Mnist => AugmentPolicy::mnist(),
        SynthKind::FashionMnist => AugmentPolicy::fashion_mnist(),
        SynthKind::Cifar10 => AugmentPolicy::cifar10(),
    }
}

fn dataset_tag(kind: SynthKind) -> &'static str {
    match kind {
        SynthKind::Mnist => "mnist",
        SynthKind::FashionMnist => "fmnist",
        SynthKind::Cifar10 => "cifar10",
    }
}

/// A trained model together with its held-out test set.
pub struct TrainedPair<M: CapsNet> {
    /// The trained model.
    pub model: M,
    /// The held-out evaluation set.
    pub test_set: Dataset,
    /// Dataset display name (for report rows).
    pub dataset_name: String,
}

/// Trains (or loads) a ShallowCaps on one synthetic dataset.
pub fn shallow(kind: SynthKind, epochs: usize) -> TrainedPair<ShallowCaps> {
    let (train_set, test_set) = kind.train_test(TRAIN_SAMPLES, TEST_SAMPLES, 42);
    let in_channels = kind.channels();
    let name = format!("shallowcaps-v2-{}-e{epochs}", dataset_tag(kind));
    let model = cached_model(
        &name,
        || ShallowCaps::new(ShallowCapsConfig::small(in_channels), 42),
        |m| {
            train(
                m,
                &train_set,
                &test_set,
                &TrainConfig {
                    epochs,
                    batch_size: 32,
                    lr: 0.002,
                    augment: policy_for(kind),
                    verbose: true,
                    ..TrainConfig::default()
                },
            );
        },
    );
    TrainedPair {
        model,
        test_set,
        dataset_name: format!("synth-{}", dataset_tag(kind)),
    }
}

/// Trains (or loads) a DeepCaps on one synthetic dataset.
pub fn deep(kind: SynthKind, epochs: usize) -> TrainedPair<DeepCaps> {
    let (train_set, test_set) = kind.train_test(TRAIN_SAMPLES, TEST_SAMPLES, 43);
    let in_channels = kind.channels();
    let name = format!("deepcaps-v2-{}-e{epochs}", dataset_tag(kind));
    let model = cached_model(
        &name,
        || DeepCaps::new(DeepCapsConfig::small(in_channels), 43),
        |m| {
            train(
                m,
                &train_set,
                &test_set,
                &TrainConfig {
                    epochs,
                    batch_size: 32,
                    lr: 0.002,
                    augment: policy_for(kind),
                    verbose: true,
                    ..TrainConfig::default()
                },
            );
        },
    );
    TrainedPair {
        model,
        test_set,
        dataset_name: format!("synth-{}", dataset_tag(kind)),
    }
}

/// Default epoch counts tuned so every model converges on the synthetic
/// data within a CPU-friendly budget.
pub mod epochs {
    /// ShallowCaps epochs.
    pub const SHALLOW: usize = 8;
    /// DeepCaps epochs.
    pub const DEEP: usize = 10;
}
