//! Regenerates paper Fig. 12: Q-CapsNet results of DeepCaps on the
//! CIFAR10 stand-in — per-layer fractional bits for weights, activations
//! and dynamic routing at two operating points (Q4/Q5-style), plus the
//! extreme-budget accuracy collapse.
//!
//! Expected shape (paper): the paper's headline — ≈ 6.2× weight-memory
//! reduction at ≈ 0.15 % accuracy loss — plus a Pareto pair where the
//! `model_satisfied` has fewer activation/DR bits than the
//! `model_accuracy` at slightly higher weight memory, and a near-chance
//! collapse at ≈ 20× compression.

use qcapsnets::{report, run, FrameworkConfig, Outcome};
use qcn_bench::zoo::{self, epochs};
use qcn_capsnet::CapsNet;
use qcn_datasets::SynthKind;
use qcn_fixed::RoundingScheme;

fn main() {
    let pair = zoo::deep(SynthKind::Cifar10, epochs::DEEP);
    let groups = pair.model.groups();
    let total_w: u64 = groups.iter().map(|g| g.weight_count as u64).sum();
    let fp32_bits = total_w * 32;
    println!(
        "== Fig. 12: DeepCaps on {} (FP32 weight memory {}) ==\n",
        pair.dataset_name,
        report::mbit(fp32_bits)
    );
    // The paper discusses SR as the best scheme for DeepCaps.
    let scheme = RoundingScheme::Stochastic;

    // Q4-style: moderate budget, Path A expected.
    let q4 = run(
        &pair.model,
        &pair.test_set,
        &FrameworkConfig {
            acc_tol: 0.005,
            memory_budget_bits: fp32_bits / 6,
            scheme,
            ..FrameworkConfig::default()
        },
    );
    println!(
        "FP32 accuracy {:.2}% (target {:.2}%)\n",
        q4.acc_fp32 * 100.0,
        q4.acc_target * 100.0
    );
    println!("[Q4-style] budget = fp32/6, tol 0.5%, {scheme}:");
    for r in q4.outcome.results() {
        println!("{}", report::layer_table(&groups, r));
    }

    // Q5-style: looser budget, tighter tolerance.
    let q5 = run(
        &pair.model,
        &pair.test_set,
        &FrameworkConfig {
            acc_tol: 0.002,
            memory_budget_bits: fp32_bits / 3,
            scheme,
            ..FrameworkConfig::default()
        },
    );
    println!("[Q5-style] budget = fp32/3, tol 0.2%, {scheme}:");
    for r in q5.outcome.results() {
        println!("{}", report::layer_table(&groups, r));
    }

    // Extreme budget: the paper's 19.76×-reduction row collapses to 10.25%.
    let extreme = run(
        &pair.model,
        &pair.test_set,
        &FrameworkConfig {
            acc_tol: 0.002,
            memory_budget_bits: total_w * 3 / 2, // 1.5 bits/weight average
            scheme,
            ..FrameworkConfig::default()
        },
    );
    println!("[extreme] budget = 1.5 bits/weight, tol 0.2%, {scheme}:");
    match &extreme.outcome {
        Outcome::Fallback { memory, .. } => {
            println!("{}", report::layer_table(&groups, memory));
            println!(
                "collapse check: model_memory accuracy {:.2}% (chance = 10%)",
                memory.accuracy * 100.0
            );
        }
        Outcome::Satisfied(r) => println!("{}", report::layer_table(&groups, r)),
    }
}
