//! Regenerates paper Fig. 13 / §IV-C: accuracy reached by ShallowCaps
//! under each rounding scheme (TRN, RTN, SR) at the same weight-memory
//! usage, sweeping the memory budget, on both the MNIST and FashionMNIST
//! stand-ins.
//!
//! Expected shape (paper): TRN and RTN return near-identical results
//! (they differ only on exact half-way values); SR outperforms both at
//! aggressive (low-memory) operating points because it randomises the
//! quantization noise instead of forcing small values to zero.

use qcapsnets::memory::weight_memory_bits;
use qcapsnets::{run, FrameworkConfig};
use qcn_bench::zoo::{self, epochs};
use qcn_capsnet::CapsNet;
use qcn_datasets::SynthKind;
use qcn_fixed::RoundingScheme;

fn main() {
    for kind in [SynthKind::Mnist, SynthKind::FashionMnist] {
        let pair = zoo::shallow(kind, epochs::SHALLOW);
        let groups = pair.model.groups();
        let total_w: u64 = groups.iter().map(|g| g.weight_count as u64).sum();
        println!(
            "\n== Fig. 13: rounding schemes on {} ==\n",
            pair.dataset_name
        );
        println!(
            "{:>16} {:>10} {:>10} {:>10}",
            "budget (b/wt)", "TRN acc", "RTN acc", "SR acc"
        );
        // Sweep average bits-per-weight from generous to starved.
        for bits_per_weight in [8u64, 6, 5, 4, 3, 2] {
            let budget = total_w * bits_per_weight;
            let mut row = format!("{bits_per_weight:>16}");
            let mut accs = Vec::new();
            let mut mems = Vec::new();
            for scheme in RoundingScheme::ALL {
                let rep = run(
                    &pair.model,
                    &pair.test_set,
                    &FrameworkConfig {
                        acc_tol: 0.01,
                        memory_budget_bits: budget,
                        scheme,
                        ..FrameworkConfig::default()
                    },
                );
                // Compare at equal memory: take the budget-respecting model
                // (model_satisfied on Path A, model_memory on Path B).
                let result = match &rep.outcome {
                    qcapsnets::Outcome::Satisfied(r) => r.clone(),
                    qcapsnets::Outcome::Fallback { memory, .. } => memory.clone(),
                };
                row.push_str(&format!(" {:>9.1}%", result.accuracy * 100.0));
                accs.push(result.accuracy);
                mems.push(weight_memory_bits(&groups, &result.config));
            }
            println!("{row}");
        }
        println!("\n§IV-C expectations: TRN ≈ RTN everywhere; SR at least matches them");
        println!("and wins at the most aggressive budgets.");
    }
}
