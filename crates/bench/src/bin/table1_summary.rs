//! Regenerates paper Table I: accuracy, weight-memory and
//! activation-memory reduction for ShallowCaps × {MNIST, FashionMNIST}
//! and DeepCaps × {MNIST, FashionMNIST, CIFAR10}, each at two operating
//! points (a moderate and an aggressive memory budget), using the
//! best-of-library rounding scheme.
//!
//! Expected shape (paper): 2–7.5× weight-memory and 2.5–6.5× activation-
//! memory reductions at sub-percent accuracy loss on the easy datasets;
//! somewhat larger loss tolerated on the harder ones.

use qcapsnets::{report, run_library, FrameworkConfig, Selection};
use qcn_bench::zoo::{self, epochs};
use qcn_capsnet::CapsNet;
use qcn_datasets::SynthKind;
use qcn_fixed::RoundingScheme;

/// Runs one model × dataset cell at one budget, printing a Table I row per
/// produced model.
fn cell<M: CapsNet + Sync>(
    model: &M,
    test: &qcn_datasets::Dataset,
    dataset: &str,
    budget_div: u64,
) {
    let groups = model.groups();
    let fp32_bits: u64 = groups.iter().map(|g| g.weight_count as u64).sum::<u64>() * 32;
    let config = FrameworkConfig {
        acc_tol: 0.005,
        memory_budget_bits: fp32_bits / budget_div,
        ..FrameworkConfig::default()
    };
    let lib = run_library(model, test, &config, &RoundingScheme::ALL);
    match &lib.selection {
        Selection::Satisfied { scheme, result } => {
            println!(
                "{}   [budget fp32/{budget_div}, {scheme}, {}]",
                report::table1_row(model.name(), dataset, result),
                result.kind
            );
        }
        Selection::Fallback { memory, accuracy } => {
            println!(
                "{}   [budget fp32/{budget_div}, {}, {}]",
                report::table1_row(model.name(), dataset, &accuracy.1),
                accuracy.0,
                accuracy.1.kind
            );
            println!(
                "{}   [budget fp32/{budget_div}, {}, {}]",
                report::table1_row(model.name(), dataset, &memory.1),
                memory.0,
                memory.1.kind
            );
        }
    }
}

fn main() {
    println!("== Table I: Q-CapsNet accuracy and memory reductions ==\n");
    println!(
        "{:<12} {:<18} {:>8} {:>9} {:>9}",
        "model", "dataset", "acc", "W-mem", "A-mem"
    );
    // ShallowCaps rows.
    for kind in [SynthKind::Mnist, SynthKind::FashionMnist] {
        let pair = zoo::shallow(kind, epochs::SHALLOW);
        for budget_div in [5u64, 8] {
            cell(&pair.model, &pair.test_set, &pair.dataset_name, budget_div);
        }
    }
    // DeepCaps rows.
    for kind in [
        SynthKind::Mnist,
        SynthKind::FashionMnist,
        SynthKind::Cifar10,
    ] {
        let pair = zoo::deep(kind, epochs::DEEP);
        for budget_div in [5u64, 8] {
            cell(&pair.model, &pair.test_set, &pair.dataset_name, budget_div);
        }
    }
    println!("\n(two rows per model/dataset when Path B returns the fallback pair)");
}
