//! Regenerates paper Fig. 2: energy per operation and silicon area of a
//! fixed-point MAC unit across wordlengths 4–32 bits.
//!
//! Expected shape (paper): both curves grow quadratically with wordlength;
//! a 32-bit MAC costs ≈ 1.4 pJ / ≈ 10 800 µm².

use qcn_hwmodel::HwUnit;

fn main() {
    println!("== Fig. 2: fixed-point MAC unit cost vs wordlength ==\n");
    println!(
        "{:>10} {:>14} {:>14}",
        "wordlength", "energy (pJ)", "area (µm²)"
    );
    let mac = HwUnit::mac();
    for bits in (4..=32u8).step_by(4) {
        println!(
            "{:>9}b {:>14.4} {:>14.1}",
            bits,
            mac.energy_pj(bits),
            mac.area_um2(bits)
        );
    }
    // Quadratic-shape check: doubling the wordlength quadruples the cost.
    for bits in [4u8, 8, 16] {
        let e_ratio = mac.energy_pj(2 * bits) / mac.energy_pj(bits);
        assert!((e_ratio - 4.0).abs() < 1e-6);
    }
    println!("\nclaim verified: energy and area grow quadratically with wordlength,");
    println!("motivating the framework's wordlength minimisation.");
}
