//! Regenerates paper Fig. 11: Q-CapsNet results of ShallowCaps on the
//! MNIST stand-in — per-layer fractional bits for weights, activations and
//! dynamic routing, with accuracy and memory reductions, for:
//!
//! * **Q1** (`model_satisfied`) — Path A at a moderate budget;
//! * **Q2** (`model_accuracy`) and **Q3** (`model_memory`) — Path B at a
//!   deliberately infeasible budget.
//!
//! Expected shape (paper): Q1 reduces weight memory ≈ 4–6× within the
//! tolerance; Q2 pushes weights to their minimum at the accuracy target;
//! Q3 collapses to near-chance accuracy at the extreme budget; DR bits end
//! up at or below the activation bits.

use qcapsnets::{report, run, FrameworkConfig, Outcome};
use qcn_bench::zoo::{self, epochs};
use qcn_capsnet::CapsNet;
use qcn_datasets::SynthKind;
use qcn_fixed::RoundingScheme;

fn main() {
    let pair = zoo::shallow(SynthKind::Mnist, epochs::SHALLOW);
    let groups = pair.model.groups();
    let total_w: u64 = groups.iter().map(|g| g.weight_count as u64).sum();
    let fp32_bits = total_w * 32;
    println!(
        "== Fig. 11: ShallowCaps on {} (FP32 weight memory {}) ==\n",
        pair.dataset_name,
        report::mbit(fp32_bits)
    );

    // --- Path A: moderate budget (≈ 32/5 of FP32, like the paper's
    // 45 Mbit of 217 Mbit), tolerance 0.2 %.
    let path_a = run(
        &pair.model,
        &pair.test_set,
        &FrameworkConfig {
            acc_tol: 0.002,
            memory_budget_bits: fp32_bits / 5,
            scheme: RoundingScheme::RoundToNearest,
            ..FrameworkConfig::default()
        },
    );
    println!(
        "FP32 accuracy {:.2}%, target {:.2}%, step-1 uniform frac {} bits\n",
        path_a.acc_fp32 * 100.0,
        path_a.acc_target * 100.0,
        path_a.step1_frac
    );
    match &path_a.outcome {
        Outcome::Satisfied(q1) => {
            println!("[Q1] Path A (budget = FP32/5, tolerance 0.2%):");
            println!("{}", report::layer_table(&groups, q1));
        }
        Outcome::Fallback { memory, accuracy } => {
            println!("[Q1] budget unexpectedly infeasible; Path B results:");
            println!("{}", report::layer_table(&groups, memory));
            println!("{}", report::layer_table(&groups, accuracy));
        }
    }

    // --- Path B: deliberately tiny budget (≈ 2.5 bits/weight) to force
    // the fallback pair, like the paper's Q2/Q3.
    let path_b = run(
        &pair.model,
        &pair.test_set,
        &FrameworkConfig {
            acc_tol: 0.002,
            memory_budget_bits: total_w * 5 / 2,
            scheme: RoundingScheme::RoundToNearest,
            ..FrameworkConfig::default()
        },
    );
    match &path_b.outcome {
        Outcome::Fallback { memory, accuracy } => {
            println!("[Q2] Path B model_accuracy (min memory at the accuracy target):");
            println!("{}", report::layer_table(&groups, accuracy));
            println!("[Q3] Path B model_memory (extreme budget — accuracy collapses):");
            println!("{}", report::layer_table(&groups, memory));
        }
        Outcome::Satisfied(q) => {
            println!("[Q2/Q3] extreme budget unexpectedly satisfiable:");
            println!("{}", report::layer_table(&groups, q));
        }
    }
    println!(
        "evaluations: path A {} + path B {}",
        path_a.evaluations, path_b.evaluations
    );
}
