//! Regenerates paper Fig. 3: energy and area of fixed-point squash and
//! softmax modules across 2–8 fractional bits (one integer bit).
//!
//! Expected shape (paper): quadratic growth in the fractional bit count,
//! and both units costing more than a plain MAC at equal width — the
//! motivation for the framework's extra-aggressive dynamic-routing
//! quantization (step 4A).

use qcn_hwmodel::HwUnit;

fn main() {
    println!("== Fig. 3: squash / softmax unit cost vs fractional bits ==\n");
    println!(
        "{:>10} {:>16} {:>16} {:>16} {:>16}",
        "frac bits", "squash E (pJ)", "squash A (µm²)", "softmax E (pJ)", "softmax A (µm²)"
    );
    let (squash, softmax, mac) = (HwUnit::squash(), HwUnit::softmax(), HwUnit::mac());
    for bits in 2..=8u8 {
        println!(
            "{:>10} {:>16.3} {:>16.1} {:>16.3} {:>16.1}",
            bits,
            squash.energy_pj(bits),
            squash.area_um2(bits),
            softmax.energy_pj(bits),
            softmax.area_um2(bits)
        );
    }
    for bits in 2..=8u8 {
        assert!(squash.energy_pj(bits) > mac.energy_pj(bits));
        assert!(softmax.energy_pj(bits) > mac.energy_pj(bits));
    }
    println!(
        "\nat 8 fractional bits a squash evaluation costs {:.1}x a same-width MAC",
        squash.energy_pj(8) / mac.energy_pj(9) // 1 integer + 8 fractional bits
    );
    println!("claim verified: squash/softmax are the expensive units, and their cost");
    println!("falls quadratically with the Q_DR wordlength the framework minimises.");
}
