//! Ablation for §IV-D: with weights and activations fixed at a
//! step-1-style uniform width, sweep the dynamic-routing wordlength
//! `Q_DR` from 8 fractional bits down to 1 and report accuracy plus the
//! estimated per-inference energy (full-size ShallowCaps accounting,
//! UMC-65nm-calibrated unit models).
//!
//! Expected shape (paper): the routing data tolerates 3–4 fractional bits
//! with negligible accuracy loss — the routing coefficients are updated
//! dynamically and adapt to quantization — while the squash/softmax energy
//! falls quadratically with the DR width.

use qcn_bench::zoo::{self, epochs};
use qcn_capsnet::{accuracy, CapsNet, ModelQuant};
use qcn_datasets::SynthKind;
use qcn_fixed::RoundingScheme;
use qcn_hwmodel::archstats::shallow_caps;
use qcn_hwmodel::{inference_energy_nj, HwUnit, LayerBits};

fn main() {
    let pair = zoo::shallow(SynthKind::Mnist, epochs::SHALLOW);
    let arch = shallow_caps();
    let base_frac = 6u8; // weights/activations fixed at Q1.6
    println!("== §IV-D ablation: DR wordlength sweep (Qw = Qa = {base_frac} frac bits) ==\n");
    println!(
        "{:>8} {:>10} {:>16} {:>18} {:>10}",
        "DR bits", "accuracy", "total (nJ/inf)", "sq+sm units (nJ)", "vs DR=8"
    );
    let mut config = ModelQuant::uniform(3, base_frac, RoundingScheme::RoundToNearest);
    let energy_at = |dr: u8| {
        let bits: Vec<LayerBits> = arch
            .layers
            .iter()
            .map(|_| LayerBits {
                mac_bits: base_frac + 1,
                dr_bits: dr,
            })
            .collect();
        inference_energy_nj(&arch, &bits)
    };
    let routing_energy_at = |dr: u8| {
        (arch.total_squash_ops() as f64 * HwUnit::squash().energy_pj(dr)
            + arch.total_softmax_ops() as f64 * HwUnit::softmax().energy_pj(dr))
            / 1000.0
    };
    let r8 = routing_energy_at(8);
    let fp_acc = {
        let fp = ModelQuant::full_precision(3);
        accuracy(&pair.model, &pair.test_set, &fp, 50)
    };
    let mut acc_at = Vec::new();
    for dr in (1..=8u8).rev() {
        config.layers[2].dr_frac = Some(dr); // L3 is the routing layer
        let qmodel = pair.model.with_quantized_weights(&config);
        let acc = accuracy(&qmodel, &pair.test_set, &config, 50);
        let energy = energy_at(dr);
        let routing = routing_energy_at(dr);
        println!(
            "{:>8} {:>9.2}% {:>16.1} {:>18.3} {:>9.2}x",
            dr,
            acc * 100.0,
            energy,
            routing,
            r8 / routing
        );
        acc_at.push((dr, acc));
    }
    println!("\nFP32 reference accuracy: {:.2}%", fp_acc * 100.0);
    // The §IV-D claim: 3–4 DR bits lose almost nothing.
    let acc4 = acc_at.iter().find(|(d, _)| *d == 4).expect("swept").1;
    let acc3 = acc_at.iter().find(|(d, _)| *d == 3).expect("swept").1;
    println!(
        "claim check: accuracy at DR=4: {:.2}% (Δ {:.2} pts); at DR=3: {:.2}% (Δ {:.2} pts)",
        acc4 * 100.0,
        (fp_acc - acc4) * 100.0,
        acc3 * 100.0,
        (fp_acc - acc3) * 100.0
    );
}
