//! Q-CapsNets vs the traditional statistics-driven baseline (§II-C):
//! Ristretto/SQNR-style per-layer format selection needs zero accuracy
//! evaluations but cannot exploit the dynamic routing's quantization
//! tolerance; the framework spends a handful of evaluations and wins on
//! the memory–accuracy trade-off. Also demonstrates the STE fine-tuning
//! extension rescuing a budget-collapsed model.

use qcapsnets::baselines::statistical_quantization;
use qcapsnets::memory::{activation_memory_bits, weight_memory_bits};
use qcapsnets::{finetune, run, FinetuneConfig, FrameworkConfig, Outcome};
use qcn_bench::zoo::{self, epochs, TRAIN_SAMPLES};
use qcn_capsnet::{accuracy, CapsNet};
use qcn_datasets::SynthKind;
use qcn_fixed::RoundingScheme;

fn main() {
    let pair = zoo::shallow(SynthKind::Mnist, epochs::SHALLOW);
    let groups = pair.model.groups();
    println!("== statistical baseline vs Q-CapsNets (ShallowCaps/synth-MNIST) ==\n");
    println!(
        "{:<40} {:>8} {:>12} {:>12} {:>7}",
        "method", "acc", "W mem (bit)", "A mem (bit)", "evals"
    );
    // Baseline at a few SQNR operating points.
    for sqnr in [20.0f32, 30.0, 40.0] {
        let config =
            statistical_quantization(&pair.model, sqnr, 16, RoundingScheme::RoundToNearest);
        let qmodel = pair.model.with_quantized_weights(&config);
        let acc = accuracy(&qmodel, &pair.test_set, &config, 50);
        println!(
            "{:<40} {:>7.2}% {:>12} {:>12} {:>7}",
            format!("statistical (SQNR ≥ {sqnr} dB)"),
            acc * 100.0,
            weight_memory_bits(&groups, &config),
            activation_memory_bits(&groups, &config),
            0
        );
    }
    // Q-CapsNets at matched budgets.
    let fp32_bits: u64 = groups.iter().map(|g| g.weight_count as u64 * 32).sum();
    for div in [5u64, 8] {
        let report = run(
            &pair.model,
            &pair.test_set,
            &FrameworkConfig {
                acc_tol: 0.005,
                memory_budget_bits: fp32_bits / div,
                ..FrameworkConfig::default()
            },
        );
        let result = match &report.outcome {
            Outcome::Satisfied(r) => r.clone(),
            Outcome::Fallback { memory, .. } => memory.clone(),
        };
        println!(
            "{:<40} {:>7.2}% {:>12} {:>12} {:>7}",
            format!("Q-CapsNets (budget fp32/{div})"),
            result.accuracy * 100.0,
            result.weight_mem_bits,
            result.act_mem_bits,
            report.evaluations
        );
    }

    // Fine-tuning rescue: collapse under an extreme budget, then recover.
    println!("\n== STE fine-tuning rescue (extension beyond the paper) ==\n");
    let total_w: u64 = groups.iter().map(|g| g.weight_count as u64).sum();
    let report = run(
        &pair.model,
        &pair.test_set,
        &FrameworkConfig {
            acc_tol: 0.005,
            memory_budget_bits: total_w * 5 / 2, // 2.5 bits/weight: collapses
            ..FrameworkConfig::default()
        },
    );
    let collapsed = match &report.outcome {
        Outcome::Fallback { memory, .. } => memory.clone(),
        Outcome::Satisfied(r) => r.clone(),
    };
    println!(
        "model_memory at 2.5 bits/weight: {:.2}% ({}x weight compression)",
        collapsed.accuracy * 100.0,
        collapsed.weight_mem_reduction
    );
    let (train_set, _) = SynthKind::Mnist.train_test(TRAIN_SAMPLES, 1, 42);
    let mut master = pair.model.clone();
    let (before, after) = finetune(
        &mut master,
        &collapsed.config,
        &train_set,
        &pair.test_set,
        &FinetuneConfig {
            epochs: 2,
            lr: 5e-4,
            ..FinetuneConfig::default()
        },
    );
    println!(
        "after 2 epochs of straight-through fine-tuning: {:.2}% → {:.2}%",
        before * 100.0,
        after * 100.0
    );
    println!("(same wordlengths, same memory — the weights adapt to the grid)");
}
