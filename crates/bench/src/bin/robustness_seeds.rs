//! Robustness of the framework's results across training seeds (an
//! analysis the paper does not report): train the same ShallowCaps on the
//! same data from three different initialisations, run the framework with
//! identical constraints, and compare the chosen wordlengths and achieved
//! reductions.
//!
//! Expected shape: the *reductions* are stable (within ~1 bit of weight
//! width) even though the underlying weights differ completely — the
//! framework adapts to each model's own quantization tolerance.

use qcapsnets::{run, FrameworkConfig, Outcome};
use qcn_bench::cache::cached_model;
use qcn_capsnet::{train, CapsNet, ShallowCaps, ShallowCapsConfig, TrainConfig};
use qcn_datasets::augment::AugmentPolicy;
use qcn_datasets::SynthKind;

fn main() {
    let (train_set, test_set) = SynthKind::Mnist.train_test(2000, 500, 42);
    println!("== framework robustness across training seeds ==\n");
    println!(
        "{:>6} {:>10} {:>10} {:>8} {:>10} {:>22}",
        "seed", "fp32 acc", "quant acc", "W mem×", "A mem×", "per-layer W bits"
    );
    let mut reductions = Vec::new();
    for seed in [42u64, 1042, 2042] {
        let model = cached_model(
            &format!("shallowcaps-v2-seed{seed}-e8"),
            || ShallowCaps::new(ShallowCapsConfig::small(1), seed),
            |m| {
                train(
                    m,
                    &train_set,
                    &test_set,
                    &TrainConfig {
                        epochs: 8,
                        lr: 0.002,
                        augment: AugmentPolicy::mnist(),
                        verbose: true,
                        seed,
                        ..TrainConfig::default()
                    },
                );
            },
        );
        let fp32_bits: u64 = model
            .groups()
            .iter()
            .map(|g| g.weight_count as u64 * 32)
            .sum();
        let report = run(
            &model,
            &test_set,
            &FrameworkConfig {
                acc_tol: 0.005,
                memory_budget_bits: fp32_bits / 5,
                ..FrameworkConfig::default()
            },
        );
        let result = match &report.outcome {
            Outcome::Satisfied(r) => r.clone(),
            Outcome::Fallback { memory, .. } => memory.clone(),
        };
        let widths: Vec<String> = result
            .config
            .layers
            .iter()
            .map(|l| l.weight_frac.map_or("fp".into(), |b| b.to_string()))
            .collect();
        println!(
            "{:>6} {:>9.2}% {:>9.2}% {:>7.2}x {:>9.2}x {:>22}",
            seed,
            report.acc_fp32 * 100.0,
            result.accuracy * 100.0,
            result.weight_mem_reduction,
            result.act_mem_reduction,
            widths.join("/")
        );
        reductions.push(result.weight_mem_reduction);
    }
    let mean = reductions.iter().sum::<f32>() / reductions.len() as f32;
    let var = reductions
        .iter()
        .map(|r| (r - mean) * (r - mean))
        .sum::<f32>()
        / reductions.len() as f32;
    println!(
        "\nweight-memory reduction across seeds: {mean:.2}x ± {:.2}",
        var.sqrt()
    );
}
