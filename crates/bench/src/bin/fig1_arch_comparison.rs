//! Regenerates paper Fig. 1: weight-memory requirements and the
//! MACs-per-memory computational-intensity ratio for ShallowCaps, AlexNet
//! and LeNet-5 (plus DeepCaps for reference).
//!
//! Expected shape (paper): AlexNet has the most memory, but ShallowCaps
//! has by far the highest MACs/memory ratio — capsule networks are more
//! compute-intensive per stored bit than both a small and a large CNN.

use qcn_hwmodel::archstats::{alexnet, deep_caps, lenet5, shallow_caps};

fn main() {
    println!("== Fig. 1: memory and compute intensity (FP32 weights) ==\n");
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>16}",
        "architecture", "params", "MACs (M)", "memory (Mbit)", "MACs/Mbit (M)"
    );
    let archs = [shallow_caps(), alexnet(), lenet5(), deep_caps(3)];
    for arch in &archs {
        println!(
            "{:<14} {:>12} {:>12.1} {:>14.1} {:>16.2}",
            arch.name,
            arch.total_params(),
            arch.total_macs() as f64 / 1.0e6,
            arch.memory_mbit(32),
            arch.macs_per_mbit()
        );
    }
    println!("\nper-layer breakdown (ShallowCaps):");
    let s = shallow_caps();
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10}",
        "layer", "params", "MACs", "squash", "softmax"
    );
    for l in &s.layers {
        println!(
            "{:<14} {:>12} {:>12} {:>10} {:>10}",
            l.name, l.params, l.macs, l.squash_ops, l.softmax_ops
        );
    }
    // The paper's qualitative claims, checked mechanically.
    let (caps, alex, lenet) = (&archs[0], &archs[1], &archs[2]);
    assert!(alex.memory_mbit(32) > caps.memory_mbit(32));
    assert!(caps.memory_mbit(32) > lenet.memory_mbit(32));
    assert!(caps.macs_per_mbit() > alex.macs_per_mbit());
    assert!(caps.macs_per_mbit() > lenet.macs_per_mbit());
    println!("\nclaims verified: AlexNet > ShallowCaps > LeNet in memory;");
    println!("ShallowCaps highest in MACs/memory (most compute-intensive).");
}
