//! Per-layer quantization-sensitivity analysis: validates the premise the
//! paper takes from Raghu et al. [19] to justify Eq. 6's decreasing
//! profile — "perturbations to weights in final layers can be more costly
//! than perturbations in the earlier layers".
//!
//! For each layer in isolation, quantize ONLY that layer's weights at
//! decreasing widths and measure the accuracy drop; all other layers stay
//! in full precision.
//!
//! Expected shape: interpreting Eq. 6 correctly — the *final* layers hold
//! the most parameters, so the budget rule gives them *fewer* bits; the
//! sensitivity sweep shows how much per-layer headroom each one has.

use qcn_bench::zoo::{self, epochs};
use qcn_capsnet::{accuracy, CapsNet, ModelQuant};
use qcn_datasets::SynthKind;

fn main() {
    let pair = zoo::shallow(SynthKind::Mnist, epochs::SHALLOW);
    let groups = pair.model.groups();
    let fp = ModelQuant::full_precision(groups.len());
    let fp_acc = accuracy(&pair.model, &pair.test_set, &fp, 50);
    println!(
        "== per-layer weight-quantization sensitivity (fp32 {:.2}%) ==\n",
        fp_acc * 100.0
    );
    print!("{:>10}", "W bits");
    for g in &groups {
        print!(" {:>10}", format!("{} only", g.name));
    }
    println!("   (accuracy when quantizing just that layer)");
    let mut first_failure: Vec<Option<u8>> = vec![None; groups.len()];
    for frac in (0..=6u8).rev() {
        print!("{frac:>10}");
        for (l, failure) in first_failure.iter_mut().enumerate() {
            let mut config = fp.clone();
            config.layers[l].weight_frac = Some(frac);
            let qmodel = pair.model.with_quantized_weights(&config);
            let acc = accuracy(&qmodel, &pair.test_set, &config, 50);
            print!(" {:>9.1}%", acc * 100.0);
            if acc < fp_acc - 0.02 && failure.is_none() {
                *failure = Some(frac);
            }
        }
        println!();
    }
    println!("\nwidth at which each layer first loses >2 points (alone):");
    for (g, f) in groups.iter().zip(&first_failure) {
        println!(
            "  {}: {} ({} weights)",
            g.name,
            f.map_or("never (≥0 bits fine)".to_string(), |b| format!(
                "{b} frac bits"
            )),
            g.weight_count
        );
    }
    println!(
        "\nEq. 6 context: the output layer holds {}x the weights of L1, so the",
        groups.last().unwrap().weight_count / groups[0].weight_count.max(1)
    );
    println!("budget rule assigns it the narrowest words — the sweep above shows the");
    println!("accuracy cost of that choice for each layer in isolation.");
}
