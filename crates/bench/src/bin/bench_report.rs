//! Machine-readable kernel benchmark report (minimum of 15 samples).
//!
//! Times the tensor hot paths (matmul / bmm / conv2d / capsule votes /
//! dynamic routing) with the serial fallback (`with_threads(1)`) and the
//! default thread pool, plus the seed's naive triple-loop matmul as the
//! pre-optimisation reference, and writes the medians to a JSON file
//! (`BENCH_kernels.json` by default, or the path given as the first
//! argument). The checked-in copy of that file documents the measured
//! speedups quoted in `docs/performance.md`.

use qcapsnets::export::pack_model;
use qcapsnets::{run as run_framework, FrameworkConfig, Outcome, RunReport, SearchAccel};
use qcn_capsnet::layers::{caps_votes_infer, caps_votes_infer_fused, CapsFc};
use qcn_capsnet::{
    train, CapsNet, DeepCaps, DeepCapsConfig, LayerQuant, ModelQuant, QuantCtx, ShallowCaps,
    ShallowCapsConfig, TrainConfig,
};
use qcn_datasets::augment::AugmentPolicy;
use qcn_datasets::{Dataset, SynthKind};
use qcn_fixed::{QFormat, Quantizer, RoundingScheme};
use qcn_hwmodel::archstats;
use qcn_hwmodel::latency::Accelerator;
use qcn_intinfer::{IntModel, UnitMode};
use qcn_router::{Router, RouterConfig};
use qcn_serve::{
    Client, FakeQuantEngine, IntEngine, ModelRegistry, ServeConfig, ServeEngine, Server,
    SocketServer,
};
use qcn_tensor::conv::{conv2d, conv2d_fused, Conv2dSpec};
use qcn_tensor::parallel::{current_threads, with_threads};
use qcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Best-case wall-clock milliseconds per call: warm up, size the batch so
/// one sample spans ≥ ~5 ms, then take the minimum of 15 samples (the
/// sample least disturbed by other tenants of the machine).
fn measure(mut f: impl FnMut()) -> f64 {
    f();
    let probe = Instant::now();
    f();
    let est = probe.elapsed().as_secs_f64();
    let iters = ((0.005 / est.max(1e-9)).ceil() as usize).clamp(1, 10_000);
    (0..15)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e3 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// The seed's matmul (straight triple loop with the `a == 0.0` skip) —
/// the reference the blocked kernel is compared against.
fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for l in 0..k {
            let av = ad[i * k + l];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += av * bd[l * n + j];
            }
        }
    }
    Tensor::from_vec(out, [m, n]).expect("naive matmul output")
}

struct Entry {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
}

/// A fused-epilogue quantization comparison: the same kernel + rounding
/// work, once as compute-then-sequential-round (the pre-fusion
/// composition: one extra memory pass, per-element scheme dispatch and
/// constant recomputation), once with the rounding fused into the kernel's
/// writeback epilogue. Both paths produce bit-identical results for
/// deterministic schemes (see `tests/fused_quantization.rs`).
struct FusedEntry {
    name: &'static str,
    round_after_ms: f64,
    fused_ms: f64,
}

/// A full-network comparison of the three execution paths for one packed
/// model: the fake-quant f32 reference, the integer engine with
/// float-exact units (bit-identical by construction — `bit_exact` records
/// the measured check), and the pure-integer engine. `capsacc_latency_us`
/// is the CapsAcc analytical latency of the architecture from the
/// hardware model, tying the software timings to the accelerator the
/// wordlength blob targets.
struct IntInferEntry {
    name: String,
    fake_quant_ms: f64,
    float_exact_ms: f64,
    integer_ms: f64,
    bit_exact: bool,
    capsacc_latency_us: f64,
}

/// Times one model through the three paths under `config` (RTN so timing
/// excludes RNG cost differences) on an on-grid input batch.
fn int_infer_entry<M: CapsNet>(
    name: String,
    model: &M,
    desc: &qcn_capsnet::descriptor::ModelDesc,
    config: &ModelQuant,
    x: &Tensor,
    in_frac: u8,
    capsacc_latency_us: f64,
) -> IntInferEntry {
    let qmodel = model.with_quantized_weights(config);
    let engine = IntModel::load(desc, &pack_model(model, config)).expect("config fully quantized");
    let mut ctx = QuantCtx::from_config(config);
    let want = qmodel.infer(x, config, &mut ctx);
    let got = engine.infer(x, in_frac, UnitMode::FloatExact);
    let fake_quant_ms = measure(|| {
        let mut ctx = QuantCtx::from_config(config);
        black_box(qmodel.infer(black_box(x), config, &mut ctx));
    });
    let float_exact_ms = measure(|| {
        black_box(engine.infer(black_box(x), in_frac, UnitMode::FloatExact));
    });
    let integer_ms = measure(|| {
        black_box(engine.infer(black_box(x), in_frac, UnitMode::Integer));
    });
    IntInferEntry {
        name,
        fake_quant_ms,
        float_exact_ms,
        integer_ms,
        bit_exact: got.data() == want.data(),
        capsacc_latency_us,
    }
}

/// One serving measurement: the dynamic-batching server at a fixed
/// `max_batch`, driven to saturation by a pre-filled queue.
struct ServingPoint {
    max_batch: usize,
    rps: f64,
    mean_batch: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// Serving throughput of one engine: the sequential one-request-at-a-time
/// loop as the baseline, then the server across batch sizes.
struct ServingEntry {
    engine: &'static str,
    single_loop_rps: f64,
    points: Vec<ServingPoint>,
}

/// In-process vs socket round-trip throughput for one engine behind the
/// same server: `in_process_rps` pipelines through `Server::submit`
/// directly, `socket_pipelined_rps` drives the same requests through the
/// TCP front-end on one pipelined connection, and `socket_sync_rps` is the
/// worst case — one request on the wire at a time, so every request pays a
/// full network round-trip of latency. `wire_bytes_per_request` is the
/// measured protocol cost (request + response frames) per request.
struct ServingNetEntry {
    engine: &'static str,
    requests: usize,
    in_process_rps: f64,
    socket_pipelined_rps: f64,
    socket_sync_rps: f64,
    wire_bytes_per_request: f64,
}

/// The routing tier's overhead: the same pipelined request stream against
/// one replica directly vs through a `qcn_router::Router` fronting the
/// fleet. `routed_rps / direct_rps` is the cost of the extra hop (id
/// rewriting, balancing, admission control); the acceptance bar for the
/// tier is ≥ 0.9.
struct RouterBenchEntry {
    engine: &'static str,
    requests: usize,
    replicas: usize,
    direct_rps: f64,
    routed_rps: f64,
}

/// One end-to-end Algorithm 1 timing: the full framework run (binary
/// search + Eq. 6 + layer-wise descent + DR specialisation) with the
/// search accelerations on, against `SearchAccel::naive()` — the pre-PR
/// evaluator that re-ran every candidate from the input layer over the
/// whole dataset. `identical_selection` records the exactness contract:
/// the selected configs and reported accuracies match the naive run
/// bit-for-bit at every thread count in {1, 2, 7}.
struct SearchEntry {
    name: &'static str,
    scheme: RoundingScheme,
    naive_ms: f64,
    accel_ms: f64,
    naive_evals: usize,
    accel_evals: usize,
    memo_hits: usize,
    prefix_hits: usize,
    stages_skipped: usize,
    early_exits: usize,
    identical_selection: bool,
}

/// Selection identity check: same Algorithm 1 path, bit-identical configs
/// and reported accuracies.
fn same_selection(a: &RunReport, b: &RunReport) -> bool {
    if a.acc_fp32.to_bits() != b.acc_fp32.to_bits() || a.step1_frac != b.step1_frac {
        return false;
    }
    match (&a.outcome, &b.outcome) {
        (Outcome::Satisfied(x), Outcome::Satisfied(y)) => {
            x.config == y.config && x.accuracy.to_bits() == y.accuracy.to_bits()
        }
        (
            Outcome::Fallback {
                memory: xm,
                accuracy: xa,
            },
            Outcome::Fallback {
                memory: ym,
                accuracy: ya,
            },
        ) => {
            xm.config == ym.config
                && xa.config == ya.config
                && xm.accuracy.to_bits() == ym.accuracy.to_bits()
                && xa.accuracy.to_bits() == ya.accuracy.to_bits()
        }
        _ => false,
    }
}

fn search_entry<M: CapsNet + Sync>(
    name: &'static str,
    model: &M,
    ds: &Dataset,
    base: &FrameworkConfig,
    scheme: RoundingScheme,
) -> SearchEntry {
    let naive_config = FrameworkConfig {
        scheme,
        accel: SearchAccel::naive(),
        ..base.clone()
    };
    let accel_config = FrameworkConfig {
        scheme,
        ..base.clone()
    };
    // Full runs take hundreds of milliseconds, so take the min over a few
    // passes (rather than min-of-15) to shed scheduler noise.
    let reps = 3;
    let mut naive_ms = f64::INFINITY;
    let mut naive = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = run_framework(model, ds, &naive_config);
        naive_ms = naive_ms.min(start.elapsed().as_secs_f64() * 1e3);
        naive = Some(r);
    }
    let naive = naive.expect("reps >= 1");
    let mut accel_ms = f64::INFINITY;
    let mut accel = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = run_framework(model, ds, &accel_config);
        accel_ms = accel_ms.min(start.elapsed().as_secs_f64() * 1e3);
        accel = Some(r);
    }
    let accel = accel.expect("reps >= 1");
    // The exactness contract, re-checked under forced pools: serial, even
    // and odd splits all reproduce the naive selection bit-for-bit.
    let identical = same_selection(&naive, &accel)
        && [1usize, 2, 7].iter().all(|&t| {
            let r = with_threads(t, || run_framework(model, ds, &accel_config));
            same_selection(&naive, &r)
        });
    let stats = accel.stats;
    SearchEntry {
        name,
        scheme,
        naive_ms,
        accel_ms,
        naive_evals: naive.evaluations,
        accel_evals: accel.evaluations,
        memo_hits: stats.memo_hits,
        prefix_hits: stats.prefix_hits,
        stages_skipped: stats.stages_skipped,
        early_exits: stats.early_accepts + stats.early_rejects,
        identical_selection: identical,
    }
}

/// Properly trained CPU-scale models: the search benches need accuracy
/// thresholds that actually bind (an untrained model's near-chance
/// accuracy would let every descent run straight to the floor, and a
/// half-trained one puts the quantization cliff in degenerate places).
/// This ShallowCaps-S reaches 100% on the synthetic eval set with a clean
/// cliff: uniform Q.3 holds 99.2%, uniform Q.2 collapses to chance.
fn trained_shallow_s() -> (ShallowCaps, Dataset) {
    let config = ShallowCapsConfig {
        conv_channels: 64,
        primary_types: 2,
        digit_dim: 6,
        ..ShallowCapsConfig::small(1)
    };
    let mut model = ShallowCaps::new(config, 5);
    let (train_set, test_set) = SynthKind::Mnist.train_test(600, 120, 5);
    train(
        &mut model,
        &train_set,
        &test_set,
        &TrainConfig {
            epochs: 8,
            batch_size: 25,
            lr: 0.01,
            augment: AugmentPolicy::none(),
            ..TrainConfig::default()
        },
    );
    (model, test_set)
}

fn trained_deep_s() -> (DeepCaps, Dataset) {
    let mut config = DeepCapsConfig::small(1);
    config.conv_channels = 8;
    config.blocks[0].types = 2;
    config.blocks[1].types = 2;
    config.digit_dim = 6;
    let mut model = DeepCaps::new(config, 31);
    let (train_set, test_set) = SynthKind::Mnist.train_test(200, 60, 31);
    train(
        &mut model,
        &train_set,
        &test_set,
        &TrainConfig {
            epochs: 2,
            batch_size: 25,
            lr: 0.003,
            augment: AugmentPolicy::none(),
            ..TrainConfig::default()
        },
    );
    (model, test_set)
}

/// The benchmarked Algorithm 1 workload: 10% accuracy tolerance, a weight
/// budget of 8 bits per weight, and the search capped at 6 fractional bits
/// (8-bit fixed-point words: sign, integer bit, Q.6) — the regime the
/// paper's Table I results live in.
fn search_base(model: &impl CapsNet) -> FrameworkConfig {
    let total_weights: u64 = model.groups().iter().map(|g| g.weight_count as u64).sum();
    FrameworkConfig {
        acc_tol: 0.1,
        memory_budget_bits: total_weights * 8,
        eval_batch: 6,
        max_frac_bits: 6,
        ..FrameworkConfig::default()
    }
}

/// The `search` bench section: Algorithm 1 end to end, accelerated vs
/// naive. `smoke` restricts to one ShallowCaps-S / RTN entry so CI can
/// assert the exactness contract in seconds.
fn search_entries(smoke: bool) -> Vec<SearchEntry> {
    let mut entries = Vec::new();
    let (shallow, sds) = trained_shallow_s();
    let sbase = search_base(&shallow);
    let schemes: &[RoundingScheme] = if smoke {
        &[RoundingScheme::RoundToNearest]
    } else {
        &RoundingScheme::EXTENDED
    };
    for &scheme in schemes {
        entries.push(search_entry(
            "ShallowCaps-S Algorithm 1",
            &shallow,
            &sds,
            &sbase,
            scheme,
        ));
    }
    if !smoke {
        let (deep, dds) = trained_deep_s();
        let dbase = search_base(&deep);
        for scheme in [RoundingScheme::RoundToNearest, RoundingScheme::Stochastic] {
            entries.push(search_entry(
                "DeepCaps-S Algorithm 1",
                &deep,
                &dds,
                &dbase,
                scheme,
            ));
        }
    }
    entries
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Loads `name\tms` lines produced by `scripts/bench_seed_baseline.sh`
/// (the seed commit's kernels timed with the same harness). Returns an
/// empty list when the file is absent — the report then simply omits the
/// seed columns. Because the host's absolute speed drifts between runs,
/// regenerate the TSV in the same session as the report.
fn load_seed_tsv(path: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let (name, ms) = line.rsplit_once('\t')?;
            Some((name.to_string(), ms.trim().parse().ok()?))
        })
        .collect()
}

fn main() {
    // Progress lines go through the leveled log facade at Info; the
    // default level is Warn, so raise it here — QCN_LOG still overrides
    // in both directions.
    qcn_telemetry::set_default_level(qcn_telemetry::Level::Info);
    if std::env::args().nth(1).as_deref() == Some("--search-smoke") {
        qcn_telemetry::info!("bench_report", "search smoke (ShallowCaps-S, RTN only)");
        for e in search_entries(true) {
            println!(
                "{} [{}]: naive {:.0} ms / {} evals, accel {:.0} ms / {} evals \
                 ({:.2}x), identical_selection={}",
                e.name,
                e.scheme,
                e.naive_ms,
                e.naive_evals,
                e.accel_ms,
                e.accel_evals,
                e.naive_ms / e.accel_ms,
                e.identical_selection
            );
            assert!(
                e.identical_selection,
                "accelerated search diverged from the naive selection"
            );
        }
        return;
    }
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let seed_tsv_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "target/seed-baseline/seed_kernels.tsv".to_string());
    let seed_ms = load_seed_tsv(&seed_tsv_path);
    let threads = current_threads();
    qcn_telemetry::info!(
        "bench_report",
        "timing kernels with {threads} thread(s) available"
    );

    let mut rng = StdRng::seed_from_u64(0);
    let ma = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    let mb = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    let ba = Tensor::rand_uniform([16, 64, 64], -1.0, 1.0, &mut rng);
    let bb = Tensor::rand_uniform([16, 64, 64], -1.0, 1.0, &mut rng);
    let conv_in = Tensor::rand_uniform([8, 16, 16, 16], -1.0, 1.0, &mut rng);
    let conv_w = Tensor::rand_uniform([32, 16, 3, 3], -1.0, 1.0, &mut rng);
    let conv_b = Tensor::rand_uniform([32], -1.0, 1.0, &mut rng);
    let spec = Conv2dSpec::new(3, 3, 1, 1);
    let votes_in = Tensor::rand_uniform([16, 128, 4], -1.0, 1.0, &mut rng);
    let votes_w = Tensor::rand_uniform([128, 10, 4, 8], -1.0, 1.0, &mut rng);
    let layer = CapsFc::new(128, 4, 10, 8, 3, &mut rng);
    let caps_in = Tensor::rand_uniform([16, 128, 4], -0.5, 0.5, &mut rng).squash_axis(2);
    let fp = LayerQuant::full_precision();

    let naive_ms = measure(|| {
        black_box(matmul_naive(black_box(&ma), black_box(&mb)));
    });

    let pair = |f: &dyn Fn()| {
        let serial = measure(|| with_threads(1, f));
        let parallel = measure(f);
        (serial, parallel)
    };
    let entries: Vec<Entry> = vec![
        {
            let (s, p) = pair(&|| {
                black_box(black_box(&ma).matmul(black_box(&mb)));
            });
            Entry {
                name: "matmul 256x256x256 blocked",
                serial_ms: s,
                parallel_ms: p,
            }
        },
        {
            let (s, p) = pair(&|| {
                black_box(black_box(&ba).bmm(black_box(&bb)));
            });
            Entry {
                name: "bmm 16x64x64x64",
                serial_ms: s,
                parallel_ms: p,
            }
        },
        {
            let (s, p) = pair(&|| {
                black_box(conv2d(
                    black_box(&conv_in),
                    black_box(&conv_w),
                    Some(&conv_b),
                    spec,
                ));
            });
            Entry {
                name: "conv2d 8x16x16x16 -> 32ch 3x3",
                serial_ms: s,
                parallel_ms: p,
            }
        },
        {
            let (s, p) = pair(&|| {
                black_box(caps_votes_infer(black_box(&votes_in), black_box(&votes_w)));
            });
            Entry {
                name: "caps_votes 16x128x4 -> 10x8",
                serial_ms: s,
                parallel_ms: p,
            }
        },
        {
            let (s, p) = pair(&|| {
                let mut ctx = QuantCtx::new(RoundingScheme::Truncation, 0);
                black_box(layer.infer(black_box(&caps_in), &fp, &mut ctx));
            });
            Entry {
                name: "caps_fc routing fp32 (3 iters)",
                serial_ms: s,
                parallel_ms: p,
            }
        },
        {
            let lq = LayerQuant {
                weight_frac: Some(8),
                act_frac: Some(6),
                dr_frac: Some(5),
                ..LayerQuant::full_precision()
            };
            let (s, p) = pair(&|| {
                let mut ctx = QuantCtx::new(RoundingScheme::Stochastic, 0);
                black_box(layer.infer(black_box(&caps_in), &lq, &mut ctx));
            });
            Entry {
                name: "caps_fc routing SR a6/dr5 (3 iters)",
                serial_ms: s,
                parallel_ms: p,
            }
        },
    ];

    // Fused-epilogue rounding vs the compute-then-round composition, at the
    // default thread count. The round-after baseline rounds element-by-
    // element with `RoundingScheme::round` — the sequential second pass the
    // quantized inference paths used before the epilogues existed.
    let q6 = QFormat::with_frac(6);
    let round_after = |t: &mut Tensor, scheme: RoundingScheme| {
        let mut rng = StdRng::seed_from_u64(1);
        for v in t.data_mut() {
            *v = scheme.round(*v, q6, &mut rng);
        }
    };
    let fused_entries: Vec<FusedEntry> =
        [RoundingScheme::RoundToNearest, RoundingScheme::Stochastic]
            .iter()
            .flat_map(|&scheme| {
                let fq = Quantizer::new(q6, scheme).fused(0x5EED);
                let conv_ra = measure(|| {
                    let mut out =
                        conv2d(black_box(&conv_in), black_box(&conv_w), Some(&conv_b), spec);
                    round_after(&mut out, scheme);
                    black_box(out);
                });
                let conv_fused = measure(|| {
                    let epi = |off: usize, row: &mut [f32]| fq.apply(off, row);
                    black_box(conv2d_fused(
                        black_box(&conv_in),
                        black_box(&conv_w),
                        Some(&conv_b),
                        spec,
                        Some(&epi),
                    ));
                });
                let votes_ra = measure(|| {
                    let mut out = caps_votes_infer(black_box(&votes_in), black_box(&votes_w));
                    round_after(&mut out, scheme);
                    black_box(out);
                });
                let votes_fused = measure(|| {
                    black_box(caps_votes_infer_fused(
                        black_box(&votes_in),
                        black_box(&votes_w),
                        Some(&fq),
                    ));
                });
                [
                    FusedEntry {
                        name: match scheme {
                            RoundingScheme::RoundToNearest => {
                                "conv2d 8x16x16x16 -> 32ch 3x3 + Qa RTN"
                            }
                            _ => "conv2d 8x16x16x16 -> 32ch 3x3 + Qa SR",
                        },
                        round_after_ms: conv_ra,
                        fused_ms: conv_fused,
                    },
                    FusedEntry {
                        name: match scheme {
                            RoundingScheme::RoundToNearest => {
                                "caps_votes 16x128x4 -> 10x8 + Q_DR RTN"
                            }
                            _ => "caps_votes 16x128x4 -> 10x8 + Q_DR SR",
                        },
                        round_after_ms: votes_ra,
                        fused_ms: votes_fused,
                    },
                ]
            })
            .collect();

    // Whole-network integer inference vs the fake-quant reference, on the
    // CPU-scale model variants the integration suites train. Inputs are
    // snapped to the Q1.5 deployment grid so the two paths see identical
    // operands.
    let grid_input = |dims: [usize; 4], seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Tensor::rand_uniform(dims, 0.0, 1.0, &mut rng);
        for v in t.data_mut() {
            *v = (*v * 32.0).round() / 32.0;
        }
        t
    };
    let int_entries: Vec<IntInferEntry> = {
        let shallow = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
        let mut sconfig = ModelQuant::uniform(3, 5, RoundingScheme::RoundToNearest);
        for lq in &mut sconfig.layers {
            lq.dr_frac = Some(4);
        }
        let deep = DeepCaps::new(DeepCapsConfig::small(1), 9);
        let mut dconfig = ModelQuant::uniform(4, 5, RoundingScheme::RoundToNearest);
        for lq in &mut dconfig.layers {
            lq.dr_frac = Some(4);
            lq.stream_frac = Some(5);
        }
        let capsacc = Accelerator::capsacc();
        vec![
            int_infer_entry(
                "ShallowCaps-S b8 uniform Q1.5 / dr Q1.4".to_string(),
                &shallow,
                &shallow.descriptor(),
                &sconfig,
                &grid_input([8, 1, 16, 16], 7),
                5,
                capsacc.latency_us(&archstats::shallow_caps()),
            ),
            int_infer_entry(
                "DeepCaps-S b4 uniform Q1.5 / dr Q1.4 / stream Q1.5".to_string(),
                &deep,
                &deep.descriptor(),
                &dconfig,
                &grid_input([4, 1, 16, 16], 8),
                5,
                capsacc.latency_us(&archstats::deep_caps(1)),
            ),
        ]
    };

    // Serving layer: batched throughput of the dynamic-batching server vs
    // the sequential single-sample loop, on both warm engines. The queue
    // is pre-filled with every request so the scheduler always has a full
    // window to batch from — the steady-state saturated regime.
    qcn_telemetry::info!("bench_report", "timing the serving layer");
    let serving_entries: Vec<ServingEntry> = {
        let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
        let mut config = ModelQuant::uniform(3, 5, RoundingScheme::RoundToNearest);
        for lq in &mut config.layers {
            lq.dr_frac = Some(4);
        }
        let int_model = IntModel::load(&model.descriptor(), &pack_model(&model, &config))
            .expect("config fully quantized");
        let requests: Vec<Tensor> = (0..192)
            .map(|i| {
                let mut x = grid_input([1, 1, 16, 16], 100 + i as u64);
                x = Tensor::from_vec(x.data().to_vec(), [1, 16, 16]).unwrap();
                x
            })
            .collect();

        let run = |register: &dyn Fn(&mut ModelRegistry), max_batch: usize| -> ServingPoint {
            let mut registry = ModelRegistry::new();
            register(&mut registry);
            let server = Server::start(
                registry,
                ServeConfig {
                    max_batch,
                    queue_capacity: requests.len(),
                    batch_window: Duration::from_millis(2),
                    request_timeout: None,
                    // One worker: the kernels already parallelize across
                    // all cores internally, so a second concurrent batch
                    // would only thrash the same cores.
                    workers: 1,
                    shed_watermark: None,
                },
            );
            // Best of nine saturated passes (first doubles as warm-up):
            // the true difference between the batched and sequential paths
            // is small on a single-core host, so the min-estimator needs
            // enough samples to get under the machine's noise floor.
            let mut best_rps = 0.0f64;
            for _ in 0..9 {
                let start = Instant::now();
                let pending: Vec<_> = requests
                    .iter()
                    .map(|x| {
                        server
                            .submit("m", x.clone())
                            .expect("queue sized for the run")
                    })
                    .collect();
                for p in pending {
                    p.wait().expect("serving bench request");
                }
                let secs = start.elapsed().as_secs_f64();
                best_rps = best_rps.max(requests.len() as f64 / secs);
            }
            let snap = server.shutdown();
            ServingPoint {
                max_batch,
                rps: best_rps,
                mean_batch: snap.mean_batch,
                p50_us: snap.latency_p50_us,
                p95_us: snap.latency_p95_us,
                p99_us: snap.latency_p99_us,
            }
        };
        let loop_rps = |engine: &dyn ServeEngine| {
            let mut best = 0.0f64;
            for _ in 0..9 {
                let start = Instant::now();
                for x in &requests {
                    // The loop also has to lift each request to the
                    // engine's batch shape — the same per-request clone
                    // the server pays inside `submit`.
                    let single = Tensor::from_vec(x.data().to_vec(), [1, 1, 16, 16]).unwrap();
                    black_box(engine.infer_batch(&single));
                }
                best = best.max(requests.len() as f64 / start.elapsed().as_secs_f64());
            }
            best
        };
        let fq_baseline = loop_rps(&FakeQuantEngine::new(&model, config.clone(), [1, 16, 16]));
        let int_baseline = loop_rps(&IntEngine::new(
            int_model.clone(),
            5,
            UnitMode::FloatExact,
            [1, 16, 16],
        ));
        let batches = [1usize, 4, 16, 64];
        vec![
            ServingEntry {
                engine: "fake_quant",
                single_loop_rps: fq_baseline,
                points: batches
                    .iter()
                    .map(|&b| {
                        run(
                            &|r| {
                                r.register(
                                    "m",
                                    FakeQuantEngine::new(&model, config.clone(), [1, 16, 16]),
                                )
                                .unwrap();
                            },
                            b,
                        )
                    })
                    .collect(),
            },
            ServingEntry {
                engine: "integer_float_exact",
                single_loop_rps: int_baseline,
                points: batches
                    .iter()
                    .map(|&b| {
                        run(
                            &|r| {
                                r.register(
                                    "m",
                                    IntEngine::new(
                                        int_model.clone(),
                                        5,
                                        UnitMode::FloatExact,
                                        [1, 16, 16],
                                    ),
                                )
                                .unwrap();
                            },
                            b,
                        )
                    })
                    .collect(),
            },
        ]
    };

    // Socket front-end: the same saturated request stream through
    // `Server::submit` directly vs over TCP (one pipelined connection, and
    // the sync one-at-a-time worst case) — what the wire layer costs.
    qcn_telemetry::info!("bench_report", "timing the socket front-end");
    let serving_net_entries: Vec<ServingNetEntry> = {
        let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
        let mut config = ModelQuant::uniform(3, 5, RoundingScheme::RoundToNearest);
        for lq in &mut config.layers {
            lq.dr_frac = Some(4);
        }
        let int_model = IntModel::load(&model.descriptor(), &pack_model(&model, &config))
            .expect("config fully quantized");
        let requests: Vec<Tensor> = (0..192)
            .map(|i| {
                let x = grid_input([1, 1, 16, 16], 100 + i as u64);
                Tensor::from_vec(x.data().to_vec(), [1, 16, 16]).unwrap()
            })
            .collect();
        let passes = 5;

        let run = |register: &dyn Fn(&mut ModelRegistry)| -> ServingNetEntry {
            let mut registry = ModelRegistry::new();
            register(&mut registry);
            let server = std::sync::Arc::new(Server::start(
                registry,
                ServeConfig {
                    max_batch: 8,
                    queue_capacity: requests.len(),
                    batch_window: Duration::from_millis(2),
                    request_timeout: None,
                    workers: 1,
                    shed_watermark: None,
                },
            ));
            let net = SocketServer::bind(std::sync::Arc::clone(&server), "127.0.0.1:0")
                .expect("bind bench front-end");

            let mut in_process_rps = 0.0f64;
            for _ in 0..passes {
                let start = Instant::now();
                let pending: Vec<_> = requests
                    .iter()
                    .map(|x| server.submit("m", x.clone()).expect("queue sized"))
                    .collect();
                for p in pending {
                    p.wait().expect("in-process bench request");
                }
                in_process_rps =
                    in_process_rps.max(requests.len() as f64 / start.elapsed().as_secs_f64());
            }

            let mut client = Client::connect(net.local_addr()).expect("connect bench client");
            let mut socket_pipelined_rps = 0.0f64;
            let mut socket_requests = 0u64;
            for _ in 0..passes {
                let start = Instant::now();
                for x in &requests {
                    client.send("m", x).expect("pipelined send");
                }
                for _ in &requests {
                    client
                        .recv()
                        .expect("pipelined recv")
                        .result
                        .expect("remote inference");
                }
                socket_pipelined_rps =
                    socket_pipelined_rps.max(requests.len() as f64 / start.elapsed().as_secs_f64());
                socket_requests += requests.len() as u64;
            }
            let mut socket_sync_rps = 0.0f64;
            for _ in 0..passes {
                let start = Instant::now();
                for x in &requests {
                    client.infer("m", x).expect("sync round-trip");
                }
                socket_sync_rps =
                    socket_sync_rps.max(requests.len() as f64 / start.elapsed().as_secs_f64());
                socket_requests += requests.len() as u64;
            }
            drop(client);
            let snap = net.shutdown();
            ServingNetEntry {
                engine: "",
                requests: requests.len(),
                in_process_rps,
                socket_pipelined_rps,
                socket_sync_rps,
                wire_bytes_per_request: (snap.bytes_in + snap.bytes_out) as f64
                    / socket_requests as f64,
            }
        };
        vec![
            ServingNetEntry {
                engine: "fake_quant",
                ..run(&|r| {
                    r.register(
                        "m",
                        FakeQuantEngine::new(&model, config.clone(), [1, 16, 16]),
                    )
                    .unwrap();
                })
            },
            ServingNetEntry {
                engine: "integer_float_exact",
                ..run(&|r| {
                    r.register(
                        "m",
                        IntEngine::new(int_model.clone(), 5, UnitMode::FloatExact, [1, 16, 16]),
                    )
                    .unwrap();
                })
            },
        ]
    };

    // Routing tier: the identical pipelined stream against one replica
    // directly vs through the router — the price of the extra hop.
    qcn_telemetry::info!("bench_report", "timing the routing tier");
    let router_entries: Vec<RouterBenchEntry> = {
        let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
        let mut config = ModelQuant::uniform(3, 5, RoundingScheme::RoundToNearest);
        for lq in &mut config.layers {
            lq.dr_frac = Some(4);
        }
        let int_model = IntModel::load(&model.descriptor(), &pack_model(&model, &config))
            .expect("config fully quantized");
        let requests: Vec<Tensor> = (0..192)
            .map(|i| {
                let x = grid_input([1, 1, 16, 16], 100 + i as u64);
                Tensor::from_vec(x.data().to_vec(), [1, 16, 16]).unwrap()
            })
            .collect();
        let passes = 5;
        const REPLICAS: usize = 2;

        let run = |register: &dyn Fn(&mut ModelRegistry)| -> RouterBenchEntry {
            let fleet: Vec<SocketServer> = (0..REPLICAS)
                .map(|_| {
                    let mut registry = ModelRegistry::new();
                    register(&mut registry);
                    let server = std::sync::Arc::new(Server::start(
                        registry,
                        ServeConfig {
                            max_batch: 8,
                            queue_capacity: requests.len(),
                            batch_window: Duration::from_millis(2),
                            request_timeout: None,
                            workers: 1,
                            shed_watermark: None,
                        },
                    ));
                    SocketServer::bind(server, "127.0.0.1:0").expect("bind bench replica")
                })
                .collect();
            let mut cfg = RouterConfig::new(fleet.iter().map(|r| r.local_addr()));
            cfg.max_inflight = requests.len();
            let router = Router::bind(cfg, "127.0.0.1:0").expect("bind bench router");

            let pipelined = |client: &mut Client| -> f64 {
                let mut best = 0.0f64;
                for _ in 0..passes {
                    let start = Instant::now();
                    for x in &requests {
                        client.send("m", x).expect("pipelined send");
                    }
                    for _ in &requests {
                        client
                            .recv()
                            .expect("pipelined recv")
                            .result
                            .expect("remote inference");
                    }
                    best = best.max(requests.len() as f64 / start.elapsed().as_secs_f64());
                }
                best
            };
            let mut direct = Client::connect(fleet[0].local_addr()).expect("connect direct");
            let direct_rps = pipelined(&mut direct);
            drop(direct);
            let mut routed = Client::connect(router.local_addr()).expect("connect routed");
            let routed_rps = pipelined(&mut routed);
            drop(routed);

            let snap = router.shutdown();
            assert_eq!(snap.failed, 0, "bench traffic must not fail over");
            for replica in fleet {
                replica.shutdown();
            }
            RouterBenchEntry {
                engine: "",
                requests: requests.len(),
                replicas: REPLICAS,
                direct_rps,
                routed_rps,
            }
        };
        vec![
            RouterBenchEntry {
                engine: "fake_quant",
                ..run(&|r| {
                    r.register(
                        "m",
                        FakeQuantEngine::new(&model, config.clone(), [1, 16, 16]),
                    )
                    .unwrap();
                })
            },
            RouterBenchEntry {
                engine: "integer_float_exact",
                ..run(&|r| {
                    r.register(
                        "m",
                        IntEngine::new(int_model.clone(), 5, UnitMode::FloatExact, [1, 16, 16]),
                    )
                    .unwrap();
                })
            },
        ]
    };

    // Search-time acceleration: Algorithm 1 end to end, accelerated vs
    // the naive evaluator, with the exactness contract re-verified at
    // thread counts 1/2/7.
    qcn_telemetry::info!("bench_report", "timing the wordlength search (Algorithm 1)");
    let search = search_entries(false);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"harness\": \"bench_report (minimum of 15 samples)\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"seed_reference\": {\n");
    json.push_str(&format!(
        "    \"matmul 256x256x256 naive (seed algorithm)\": {{ \"ms\": {naive_ms:.4} }}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"kernels\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let speedup = e.serial_ms / e.parallel_ms;
        let seed = seed_ms
            .iter()
            .find(|(name, _)| name == e.name)
            .map(|&(_, ms)| {
                format!(
                    ", \"seed_ms\": {ms:.4}, \"speedup_vs_seed\": {:.2}",
                    ms / e.parallel_ms.min(e.serial_ms)
                )
            })
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"serial_ms\": {:.4}, \"parallel_ms\": {:.4}, \"speedup\": {:.2}{seed} }}{}\n",
            json_escape(e.name),
            e.serial_ms,
            e.parallel_ms,
            speedup,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"fused_quantization\": [\n");
    for (i, e) in fused_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"round_after_ms\": {:.4}, \"fused_ms\": {:.4}, \"speedup\": {:.2} }}{}\n",
            json_escape(e.name),
            e.round_after_ms,
            e.fused_ms,
            e.round_after_ms / e.fused_ms,
            if i + 1 < fused_entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"integer_inference\": [\n");
    for (i, e) in int_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"fake_quant_ms\": {:.4}, \"float_exact_ms\": {:.4}, \"integer_ms\": {:.4}, \"bit_exact\": {}, \"capsacc_latency_us\": {:.2} }}{}\n",
            json_escape(&e.name),
            e.fake_quant_ms,
            e.float_exact_ms,
            e.integer_ms,
            e.bit_exact,
            e.capsacc_latency_us,
            if i + 1 < int_entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"serving\": [\n");
    for (i, e) in serving_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"engine\": \"{}\", \"single_loop_rps\": {:.1}, \"points\": [\n",
            e.engine, e.single_loop_rps
        ));
        for (j, p) in e.points.iter().enumerate() {
            json.push_str(&format!(
                "      {{ \"max_batch\": {}, \"rps\": {:.1}, \"mean_batch\": {:.2}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {} }}{}\n",
                p.max_batch,
                p.rps,
                p.mean_batch,
                p.p50_us,
                p.p95_us,
                p.p99_us,
                if j + 1 < e.points.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ] }}{}\n",
            if i + 1 < serving_entries.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"serving_net\": [\n");
    for (i, e) in serving_net_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"engine\": \"{}\", \"requests\": {}, \"in_process_rps\": {:.1}, \
             \"socket_pipelined_rps\": {:.1}, \"socket_sync_rps\": {:.1}, \
             \"socket_vs_in_process\": {:.3}, \"wire_bytes_per_request\": {:.1} }}{}\n",
            e.engine,
            e.requests,
            e.in_process_rps,
            e.socket_pipelined_rps,
            e.socket_sync_rps,
            e.socket_pipelined_rps / e.in_process_rps,
            e.wire_bytes_per_request,
            if i + 1 < serving_net_entries.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"router\": [\n");
    for (i, e) in router_entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"engine\": \"{}\", \"requests\": {}, \"replicas\": {}, \
             \"direct_rps\": {:.1}, \"routed_rps\": {:.1}, \"routed_vs_direct\": {:.3} }}{}\n",
            e.engine,
            e.requests,
            e.replicas,
            e.direct_rps,
            e.routed_rps,
            e.routed_rps / e.direct_rps,
            if i + 1 < router_entries.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"search\": [\n");
    for (i, e) in search.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"scheme\": \"{}\", \"naive_ms\": {:.1}, \"accel_ms\": {:.1}, \"speedup\": {:.2}, \"naive_evals\": {}, \"accel_evals\": {}, \"memo_hits\": {}, \"prefix_hits\": {}, \"stages_skipped\": {}, \"early_exits\": {}, \"identical_selection\": {} }}{}\n",
            json_escape(e.name),
            e.scheme,
            e.naive_ms,
            e.accel_ms,
            e.naive_ms / e.accel_ms,
            e.naive_evals,
            e.accel_evals,
            e.memo_hits,
            e.prefix_hits,
            e.stages_skipped,
            e.early_exits,
            e.identical_selection,
            if i + 1 < search.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("{json}");
    println!("wrote {out_path}");
}
