//! Ablation of the framework's design choices (DESIGN.md §5): what does
//! each stage of Algorithm 1 buy over a traditional uniform DNN
//! quantization (the "\[23\]/\[10\]-style" baseline the paper contrasts in
//! §II-C)?
//!
//! Compares, at the same accuracy target:
//!   1. uniform quantization only (step 1 — one width everywhere);
//!   2. + Eq. 6 decreasing weight profile (step 2);
//!   3. + layer-wise activation descent (step 3A);
//!   4. + dynamic-routing specialisation (step 4A — the full framework).
//!
//! Expected shape: every stage lowers memory (weight or activation or DR
//! bits) at roughly constant accuracy; the DR stage is "free" energy-wise
//! because routing adapts to quantization (§IV-D).

use qcapsnets::algorithms::{binary_search_uniform, dr_quant, layerwise, ParamDomain};
use qcapsnets::memory::{activation_memory_bits, weight_memory_bits};
use qcapsnets::Evaluator;
use qcn_bench::zoo::{self, epochs};
use qcn_capsnet::{CapsNet, ModelQuant};
use qcn_datasets::SynthKind;
use qcn_fixed::RoundingScheme;

fn main() {
    let pair = zoo::shallow(SynthKind::Mnist, epochs::SHALLOW);
    let groups = pair.model.groups();
    let mut eval = Evaluator::new(&pair.model, &pair.test_set, 50);
    let fp = ModelQuant {
        layers: vec![qcn_capsnet::LayerQuant::full_precision(); groups.len()],
        scheme: RoundingScheme::RoundToNearest,
        seed: 0,
    };
    let acc_fp32 = eval.accuracy(&fp);
    let slack = 1.0 / pair.test_set.len() as f32;
    let target = acc_fp32 * (1.0 - 0.005) - slack;
    println!(
        "== search-strategy ablation (ShallowCaps/synth-MNIST, fp32 {:.2}%, target {:.2}%) ==\n",
        acc_fp32 * 100.0,
        target * 100.0
    );
    println!(
        "{:<44} {:>8} {:>12} {:>12}",
        "stage", "acc", "W mem (bit)", "A mem (bit)"
    );
    let show = |name: &str, config: &ModelQuant, eval: &mut Evaluator<'_, _>| {
        let acc = eval.accuracy(config);
        println!(
            "{:<44} {:>7.2}% {:>12} {:>12}",
            name,
            acc * 100.0,
            weight_memory_bits(&groups, config),
            activation_memory_bits(&groups, config)
        );
    };

    // Stage 1: uniform width everywhere (traditional DNN quantization).
    let (uniform, frac) = binary_search_uniform(&mut eval, &fp, ParamDomain::Both, 23, target);
    show(
        &format!("1. uniform (step 1): {frac} frac bits"),
        &uniform,
        &mut eval,
    );

    // Stage 2: decreasing weight profile (Eq. 6 at the memory this
    // uniform solution uses; emulated by Algorithm 2 on weights).
    let weights_lw = layerwise(&mut eval, &uniform, ParamDomain::Weights, target);
    show(
        "2. + layer-wise weights (Eq. 6 direction)",
        &weights_lw,
        &mut eval,
    );

    // Stage 3: layer-wise activations.
    let acts_lw = layerwise(&mut eval, &weights_lw, ParamDomain::Activations, target);
    show("3. + layer-wise activations (step 3A)", &acts_lw, &mut eval);

    // Stage 4: dynamic-routing specialisation.
    let full = dr_quant(&mut eval, &acts_lw, target);
    show(
        "4. + DR quantization (step 4A, full framework)",
        &full,
        &mut eval,
    );

    // Stage 5: the paper's Algorithm-1 ordering from the same weight
    // budget — Eq. 6 structured profile first, then activations with only
    // half the remaining margin (line 14), then DR. The greedy weight-first
    // descent above spends the entire accuracy margin on weights and can
    // leave nothing for the activation/DR stages; Algorithm 1's ordering
    // is what makes the DR specialisation possible.
    let budget = weight_memory_bits(&groups, &weights_lw);
    let paper = qcapsnets::run(
        &pair.model,
        &pair.test_set,
        &qcapsnets::FrameworkConfig {
            acc_tol: 0.005,
            memory_budget_bits: budget,
            scheme: RoundingScheme::RoundToNearest,
            ..qcapsnets::FrameworkConfig::default()
        },
    );
    if let qcapsnets::Outcome::Satisfied(r) = &paper.outcome {
        show(
            "5. Algorithm-1 ordering at the same budget",
            &r.config,
            &mut eval,
        );
        let describe = |c: &ModelQuant| {
            c.layers
                .iter()
                .map(|l| {
                    format!(
                        "w{}/a{}/dr{}",
                        l.weight_frac.map_or("fp".into(), |b: u8| b.to_string()),
                        l.act_frac.map_or("fp".into(), |b: u8| b.to_string()),
                        l.dr_frac.map_or("-".into(), |b: u8| b.to_string())
                    )
                })
                .collect::<Vec<String>>()
                .join("  ")
        };
        println!("\n   greedy (weight-first): {}", describe(&full));
        println!("   Algorithm 1 ordering:  {}", describe(&r.config));
    }
    println!("\nevaluations used: {}", eval.evaluations());
}
