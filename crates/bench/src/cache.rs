//! Disk cache for trained model parameters, so repeated bench invocations
//! skip the (CPU-bound) training step.
//!
//! Format: a little-endian stream of `u64 tensor_count`, then per tensor
//! `u64 element_count` followed by raw `f32` data. The loader validates
//! counts against the freshly constructed model, so architecture changes
//! invalidate stale caches loudly instead of silently corrupting weights.

use qcn_capsnet::CapsNet;
use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;

/// Directory for cached parameters (under the cargo target dir).
pub fn cache_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("qcn-model-cache")
}

/// Serializes a model's parameters to the cache under `name`.
///
/// # Panics
///
/// Panics on I/O failure (benches treat the cache as infrastructure).
pub fn save_params<M: CapsNet>(name: &str, model: &M) {
    let dir = cache_dir();
    fs::create_dir_all(&dir).expect("create cache dir");
    let path = dir.join(format!("{name}.params"));
    let params = model.params();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for p in params {
        bytes.extend_from_slice(&(p.len() as u64).to_le_bytes());
        for &v in p.data() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    fs::File::create(&path)
        .and_then(|mut f| f.write_all(&bytes))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// Loads cached parameters into `model` if a compatible cache entry
/// exists. Returns `true` on success; `false` (leaving the model
/// untouched) when the entry is missing or incompatible.
pub fn load_params<M: CapsNet>(name: &str, model: &mut M) -> bool {
    let path = cache_dir().join(format!("{name}.params"));
    let Ok(mut file) = fs::File::open(&path) else {
        return false;
    };
    let mut bytes = Vec::new();
    if file.read_to_end(&mut bytes).is_err() {
        return false;
    }
    let mut offset = 0usize;
    let read_u64 = |bytes: &[u8], offset: &mut usize| -> Option<u64> {
        let v = bytes.get(*offset..*offset + 8)?;
        *offset += 8;
        Some(u64::from_le_bytes(v.try_into().ok()?))
    };
    let Some(count) = read_u64(&bytes, &mut offset) else {
        return false;
    };
    let mut params = model.params_mut();
    if count as usize != params.len() {
        return false;
    }
    let mut values: Vec<Vec<f32>> = Vec::with_capacity(params.len());
    for p in params.iter() {
        let Some(len) = read_u64(&bytes, &mut offset) else {
            return false;
        };
        if len as usize != p.len() {
            return false;
        }
        let byte_len = p.len() * 4;
        let Some(chunk) = bytes.get(offset..offset + byte_len) else {
            return false;
        };
        offset += byte_len;
        values.push(
            chunk
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
        );
    }
    for (p, v) in params.iter_mut().zip(values) {
        p.data_mut().copy_from_slice(&v);
    }
    true
}

/// Returns a cached trained model, or trains one with `train_fn` and
/// caches it. `build` must construct the architecture deterministically.
pub fn cached_model<M: CapsNet>(
    name: &str,
    build: impl Fn() -> M,
    train_fn: impl FnOnce(&mut M),
) -> M {
    let mut model = build();
    if load_params(name, &mut model) {
        qcn_telemetry::info!("qcn-bench", "loaded trained parameters for {name}");
        return model;
    }
    qcn_telemetry::info!(
        "qcn-bench",
        "training {name} (first run; result will be cached)"
    );
    train_fn(&mut model);
    save_params(name, &model);
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcn_capsnet::{ShallowCaps, ShallowCapsConfig};

    fn tiny(seed: u64) -> ShallowCaps {
        let config = ShallowCapsConfig {
            conv_channels: 4,
            primary_types: 2,
            digit_dim: 4,
            ..ShallowCapsConfig::small(1)
        };
        ShallowCaps::new(config, seed)
    }

    #[test]
    fn roundtrip_preserves_parameters() {
        let model = tiny(1);
        save_params("test-roundtrip", &model);
        let mut other = tiny(2); // different init
        assert_ne!(model.params()[0], other.params()[0]);
        assert!(load_params("test-roundtrip", &mut other));
        for (a, b) in model.params().iter().zip(other.params()) {
            assert_eq!(*a, b);
        }
    }

    #[test]
    fn incompatible_cache_is_rejected() {
        let model = tiny(1);
        save_params("test-incompatible", &model);
        // A differently-shaped model must refuse the cache.
        let config = ShallowCapsConfig {
            conv_channels: 6,
            primary_types: 2,
            digit_dim: 4,
            ..ShallowCapsConfig::small(1)
        };
        let mut bigger = ShallowCaps::new(config, 0);
        let before = bigger.params()[0].clone();
        assert!(!load_params("test-incompatible", &mut bigger));
        assert_eq!(&before, bigger.params()[0]);
    }

    #[test]
    fn missing_cache_returns_false() {
        let mut model = tiny(1);
        assert!(!load_params("test-definitely-missing", &mut model));
    }

    #[test]
    fn cached_model_trains_once() {
        let _ = fs::remove_file(cache_dir().join("test-train-once.params"));
        let mut calls = 0;
        let m1 = cached_model("test-train-once", || tiny(3), |_| calls += 1);
        assert_eq!(calls, 1);
        let m2 = cached_model("test-train-once", || tiny(3), |_| calls += 1);
        assert_eq!(calls, 1, "second call must hit the cache");
        assert_eq!(m1.params()[0], m2.params()[0]);
    }
}
