//! # qcn-bench
//!
//! Benchmark harness for the Q-CapsNets reproduction: shared
//! infrastructure (a disk cache of trained models, the model zoo for every
//! Table I row) plus one binary per paper table/figure:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig1_arch_comparison` | Fig. 1 — memory & MACs/memory of ShallowCaps / AlexNet / LeNet |
//! | `fig2_mac_cost` | Fig. 2 — MAC energy/area vs wordlength |
//! | `fig3_squash_softmax_cost` | Fig. 3 — squash & softmax energy/area vs fractional bits |
//! | `fig11_shallowcaps_mnist` | Fig. 11 — per-layer bits, Path A (Q1) and Path B (Q2/Q3) |
//! | `table1_summary` | Table I — all five model × dataset rows, two operating points |
//! | `fig12_deepcaps_cifar10` | Fig. 12 — DeepCaps/CIFAR10 per-layer bits (Q4/Q5 + extremes) |
//! | `fig13_rounding_comparison` | Fig. 13 / §IV-C — accuracy vs memory per rounding scheme |
//! | `drquant_ablation` | §IV-D — DR wordlength sweep with energy estimates |
//! | `baseline_comparison` | statistical (Ristretto/SQNR) baseline vs the framework; STE fine-tune rescue |
//! | `ablation_search_strategy` | greedy stage ordering vs Algorithm 1's ordering |
//! | `robustness_seeds` | framework stability across training seeds |
//! | `sensitivity_analysis` | per-layer weight-quantization sensitivity (Eq. 6 premise) |
//!
//! Criterion micro-benchmarks of the computational kernels live under
//! `benches/`.

#![warn(missing_docs)]

pub mod cache;
pub mod zoo;
