//! Criterion micro-benchmarks of the computational kernels the Q-CapsNets
//! pipeline spends its time in: convolution, capsule votes, a full dynamic
//! routing pass, quantization, and the three rounding schemes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qcn_capsnet::layers::{caps_votes_infer, CapsFc};
use qcn_capsnet::{LayerQuant, QuantCtx};
use qcn_fixed::{QFormat, Quantizer, RoundingScheme};
use qcn_tensor::conv::{conv2d, Conv2dSpec};
use qcn_tensor::parallel::with_threads;
use qcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// The seed's straightforward triple loop (with its `a == 0.0` skip),
/// kept here as the reference point for the blocked kernel's speedup.
fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for l in 0..k {
            let av = ad[i * k + l];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += av * bd[l * n + j];
            }
        }
    }
    Tensor::from_vec(out, [m, n]).expect("naive matmul output")
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let a = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    c.bench_function("matmul 256x256x256 naive", |bch| {
        bch.iter(|| matmul_naive(black_box(&a), black_box(&b)))
    });
    c.bench_function("matmul 256x256x256 blocked serial", |bch| {
        bch.iter(|| with_threads(1, || black_box(&a).matmul(black_box(&b))))
    });
    c.bench_function("matmul 256x256x256 blocked parallel", |bch| {
        bch.iter(|| black_box(&a).matmul(black_box(&b)))
    });
}

fn bench_bmm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let a = Tensor::rand_uniform([16, 64, 64], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([16, 64, 64], -1.0, 1.0, &mut rng);
    c.bench_function("bmm 16x64x64x64 serial", |bch| {
        bch.iter(|| with_threads(1, || black_box(&a).bmm(black_box(&b))))
    });
    c.bench_function("bmm 16x64x64x64 parallel", |bch| {
        bch.iter(|| black_box(&a).bmm(black_box(&b)))
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let input = Tensor::rand_uniform([8, 16, 16, 16], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform([32, 16, 3, 3], -1.0, 1.0, &mut rng);
    let bias = Tensor::rand_uniform([32], -1.0, 1.0, &mut rng);
    let spec = Conv2dSpec::new(3, 3, 1, 1);
    c.bench_function("conv2d 8x16x16x16 -> 32ch 3x3", |b| {
        b.iter(|| conv2d(black_box(&input), black_box(&weight), Some(&bias), spec))
    });
}

fn bench_caps_votes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor::rand_uniform([16, 128, 4], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform([128, 10, 4, 8], -1.0, 1.0, &mut rng);
    c.bench_function("caps_votes 16x128x4 -> 10x8", |b| {
        b.iter(|| caps_votes_infer(black_box(&input), black_box(&weight)))
    });
}

fn bench_dynamic_routing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let layer = CapsFc::new(128, 4, 10, 8, 3, &mut rng);
    let input = Tensor::rand_uniform([16, 128, 4], -0.5, 0.5, &mut rng).squash_axis(2);
    let fp = LayerQuant::full_precision();
    let q = LayerQuant {
        weight_frac: Some(6),
        act_frac: Some(6),
        dr_frac: Some(3),
        ..LayerQuant::full_precision()
    };
    c.bench_function("caps_fc routing fp32 (3 iters)", |b| {
        b.iter_batched(
            || QuantCtx::new(RoundingScheme::Truncation, 0),
            |mut ctx| layer.infer(black_box(&input), &fp, &mut ctx),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("caps_fc routing quantized DR=3", |b| {
        b.iter_batched(
            || QuantCtx::new(RoundingScheme::RoundToNearest, 0),
            |mut ctx| layer.infer(black_box(&input), &q, &mut ctx),
            BatchSize::SmallInput,
        )
    });
}

fn bench_quantizer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let t = Tensor::rand_uniform([65_536], -1.0, 1.0, &mut rng);
    for scheme in RoundingScheme::ALL {
        let quantizer = Quantizer::new(QFormat::with_frac(6), scheme);
        c.bench_function(&format!("quantize 64k elements ({scheme})"), |b| {
            b.iter_batched(
                || (t.clone(), StdRng::seed_from_u64(9)),
                |(mut tensor, mut rng)| {
                    quantizer.quantize_inplace(&mut tensor, &mut rng);
                    tensor
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_squash_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let caps = Tensor::rand_uniform([32, 512, 8], -1.0, 1.0, &mut rng);
    c.bench_function("squash 32x512x8", |b| {
        b.iter(|| black_box(&caps).squash_axis(2))
    });
    let logits = Tensor::rand_uniform([32, 128, 10, 1], -1.0, 1.0, &mut rng);
    c.bench_function("softmax 32x128x10", |b| {
        b.iter(|| black_box(&logits).softmax_axis(2))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_bmm, bench_conv2d, bench_caps_votes,
              bench_dynamic_routing, bench_quantizer, bench_squash_softmax
}
criterion_main!(kernels);
