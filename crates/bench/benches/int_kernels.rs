//! Criterion micro-benchmarks of the raw-integer inference kernels —
//! the deployment-datapath counterparts of the f32 kernels in
//! `benches/kernels.rs`, at the same problem sizes so the two reports
//! read side by side: integer convolution, the capsule-vote GEMM, and
//! the shift-based requantization epilogue per rounding scheme.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qcn_fixed::RoundingScheme;
use qcn_intinfer::epilogue::KeyedRequant;
use qcn_intinfer::kernels::{caps_votes_raw, conv2d_raw};
use qcn_intinfer::IntTensor;
use qcn_tensor::conv::Conv2dSpec;
use std::hint::black_box;

/// Deterministic raw words on a `frac`-bit grid, spread over a few integer
/// bits so the accumulators exercise realistic magnitudes.
fn raw_values(n: usize, frac: u8, seed: i64) -> Vec<i64> {
    let span = 1i64 << (frac + 2);
    (0..n)
        .map(|i| (i as i64 * 37 + seed * 11) % span - span / 2)
        .collect()
}

fn bench_int_conv2d(c: &mut Criterion) {
    // Same geometry as "conv2d 8x16x16x16 -> 32ch 3x3" in kernels.rs.
    let x = IntTensor::from_raw(raw_values(8 * 16 * 16 * 16, 5, 1), vec![8, 16, 16, 16], 5);
    let weight = raw_values(32 * 16 * 3 * 3, 5, 2);
    let bias = raw_values(32, 5, 3);
    let spec = Conv2dSpec::new(3, 3, 1, 1);
    let acc = x.frac() + 5;
    c.bench_function("int conv2d 8x16x16x16 -> 32ch 3x3 (no epilogue)", |b| {
        b.iter(|| {
            conv2d_raw(
                black_box(&x),
                black_box(&weight),
                Some(&bias),
                32,
                spec,
                acc,
                None,
            )
        })
    });
    let rq = KeyedRequant::new(RoundingScheme::RoundToNearest, acc, 5, 0xBEEF);
    let epi = move |off: usize, row: &mut [i64]| rq.apply_raw(off, row);
    c.bench_function("int conv2d 8x16x16x16 -> 32ch 3x3 (fused requant)", |b| {
        b.iter(|| {
            conv2d_raw(
                black_box(&x),
                black_box(&weight),
                Some(&bias),
                32,
                spec,
                5,
                Some(&epi),
            )
        })
    });
}

fn bench_int_caps_votes(c: &mut Criterion) {
    // Same geometry as "caps_votes 16x128x4 -> 10x8" in kernels.rs.
    let input = IntTensor::from_raw(raw_values(16 * 128 * 4, 5, 4), vec![16, 128, 4], 5);
    let weight = raw_values(128 * 10 * 4 * 8, 5, 5);
    let acc = input.frac() + 5;
    let rq = KeyedRequant::new(RoundingScheme::RoundToNearest, acc, 4, 0xBEEF);
    let epi = move |off: usize, panel: &mut [i64]| rq.apply_raw(off, panel);
    c.bench_function("int caps_votes 16x128x4 -> 10x8 (fused requant)", |b| {
        b.iter(|| caps_votes_raw(black_box(&input), black_box(&weight), 10, 8, 4, &epi))
    });
}

fn bench_shift_requant(c: &mut Criterion) {
    // Counterpart of "quantize 64k elements" in kernels.rs: the raw
    // shift-based requantization from 10 to 5 fractional bits.
    let values = raw_values(65_536, 10, 6);
    for scheme in RoundingScheme::EXTENDED {
        let rq = KeyedRequant::new(scheme, 10, 5, 0xBEEF);
        c.bench_function(&format!("int requant 64k elements ({scheme})"), |b| {
            b.iter_batched(
                || values.clone(),
                |mut vals| {
                    rq.apply_raw(0, &mut vals);
                    vals
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group! {
    name = int_kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_int_conv2d, bench_int_caps_votes, bench_shift_requant
}
criterion_main!(int_kernels);
