//! Inference energy estimation: combines the per-unit cost models
//! (Figs. 2–3) with an architecture's operation counts to estimate the
//! energy of one inference pass at given per-layer wordlengths.
//!
//! This quantifies the paper's §IV-D observation: reducing the
//! dynamic-routing wordlength to 3–4 bits yields outsized energy savings
//! because the expensive squash/softmax units shrink quadratically.

use crate::archstats::ArchStats;
use crate::costmodel::HwUnit;

/// Per-layer bit assignment for energy estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerBits {
    /// Wordlength of MAC operands.
    pub mac_bits: u8,
    /// Fractional bits of squash/softmax datapaths (the `Q_DR` of the
    /// framework for routing layers).
    pub dr_bits: u8,
}

/// Estimated energy of one inference in nanojoules, given one
/// [`LayerBits`] per layer of `arch`.
///
/// # Panics
///
/// Panics when `bits.len() != arch.layers.len()`.
pub fn inference_energy_nj(arch: &ArchStats, bits: &[LayerBits]) -> f64 {
    assert_eq!(
        bits.len(),
        arch.layers.len(),
        "one bit assignment per layer required"
    );
    let (mac, squash, softmax) = (HwUnit::mac(), HwUnit::squash(), HwUnit::softmax());
    arch.layers
        .iter()
        .zip(bits)
        .map(|(layer, b)| {
            layer.macs as f64 * mac.energy_pj(b.mac_bits)
                + layer.squash_ops as f64 * squash.energy_pj(b.dr_bits)
                + layer.softmax_ops as f64 * softmax.energy_pj(b.dr_bits)
        })
        .sum::<f64>()
        / 1000.0
}

/// Uniform-width convenience wrapper around [`inference_energy_nj`].
pub fn uniform_energy_nj(arch: &ArchStats, mac_bits: u8, dr_bits: u8) -> f64 {
    let bits = vec![LayerBits { mac_bits, dr_bits }; arch.layers.len()];
    inference_energy_nj(arch, &bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archstats::shallow_caps;

    #[test]
    fn energy_scales_quadratically_with_uniform_bits() {
        let arch = shallow_caps();
        let e16 = uniform_energy_nj(&arch, 16, 16);
        let e8 = uniform_energy_nj(&arch, 8, 8);
        assert!((e16 / e8 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn dr_bits_reduction_saves_energy_at_fixed_mac_bits() {
        let arch = shallow_caps();
        let full = uniform_energy_nj(&arch, 8, 8);
        let dr4 = uniform_energy_nj(&arch, 8, 4);
        assert!(dr4 < full);
    }

    #[test]
    fn per_layer_assignment_matches_manual_sum() {
        let arch = shallow_caps();
        let bits: Vec<LayerBits> = (0..arch.layers.len())
            .map(|i| LayerBits {
                mac_bits: 16 - 2 * i as u8,
                dr_bits: 6,
            })
            .collect();
        let total = inference_energy_nj(&arch, &bits);
        let manual: f64 = arch
            .layers
            .iter()
            .zip(&bits)
            .map(|(l, b)| {
                l.macs as f64 * HwUnit::mac().energy_pj(b.mac_bits)
                    + l.squash_ops as f64 * HwUnit::squash().energy_pj(b.dr_bits)
                    + l.softmax_ops as f64 * HwUnit::softmax().energy_pj(b.dr_bits)
            })
            .sum::<f64>()
            / 1000.0;
        assert!((total - manual).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one bit assignment per layer")]
    fn rejects_wrong_layer_count() {
        inference_energy_nj(&shallow_caps(), &[]);
    }
}
