//! Analytic energy/area cost models of the fixed-point hardware units the
//! paper synthesised in UMC 65nm with Synopsys Design Compiler (Figs. 2–3).
//!
//! The paper reports that both the energy per operation and the silicon
//! area of a MAC unit grow **quadratically** with the wordlength, and that
//! squash/softmax modules behave likewise in the number of fractional bits
//! while costing substantially more than a MAC. The models here are
//! quadratic fits anchored at the figures' endpoints (32-bit MAC ≈ 1.4 pJ /
//! 10.8 kµm²; 8-fractional-bit squash/softmax ≈ 4 pJ / 7 kµm²). They stand
//! in for the proprietary synthesis flow (DESIGN.md §3, substitution 2);
//! the paper only uses these curves qualitatively — to motivate minimising
//! wordlengths.

/// A hardware unit whose energy/area scale quadratically with the number
/// of bits it processes.
///
/// # Examples
///
/// ```
/// use qcn_hwmodel::HwUnit;
///
/// let mac = HwUnit::mac();
/// // Halving the wordlength quarters energy and area.
/// let e32 = mac.energy_pj(32);
/// let e16 = mac.energy_pj(16);
/// assert!((e32 / e16 - 4.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwUnit {
    name: &'static str,
    /// Energy coefficient: pJ per bit².
    energy_coeff: f64,
    /// Area coefficient: µm² per bit².
    area_coeff: f64,
}

impl HwUnit {
    /// Fixed-point multiply-accumulate unit (paper Fig. 2): 1.4 pJ and
    /// 10 800 µm² at a 32-bit wordlength.
    pub fn mac() -> Self {
        HwUnit {
            name: "MAC",
            energy_coeff: 1.4 / (32.0f64 * 32.0),
            area_coeff: 10_800.0 / (32.0f64 * 32.0),
        }
    }

    /// Squash unit (paper Fig. 3 left): 4 pJ and 7 000 µm² at 8 fractional
    /// bits. Bits here are *fractional* bits (the paper keeps one integer
    /// bit).
    pub fn squash() -> Self {
        HwUnit {
            name: "squash",
            energy_coeff: 4.0 / 64.0,
            area_coeff: 7_000.0 / 64.0,
        }
    }

    /// Softmax unit (paper Fig. 3 right): like squash, marginally more
    /// expensive at equal width (exponentials vs one division/square root).
    pub fn softmax() -> Self {
        HwUnit {
            name: "softmax",
            energy_coeff: 4.4 / 64.0,
            area_coeff: 7_400.0 / 64.0,
        }
    }

    /// The unit's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Energy of one operation at `bits` width, in picojoules.
    pub fn energy_pj(&self, bits: u8) -> f64 {
        self.energy_coeff * (bits as f64).powi(2)
    }

    /// Silicon area at `bits` width, in µm².
    pub fn area_um2(&self, bits: u8) -> f64 {
        self.area_coeff * (bits as f64).powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_anchors_match_paper_endpoints() {
        let mac = HwUnit::mac();
        assert!((mac.energy_pj(32) - 1.4).abs() < 1e-9);
        assert!((mac.area_um2(32) - 10_800.0).abs() < 1e-6);
    }

    #[test]
    fn squash_softmax_anchor_at_8_fractional_bits() {
        assert!((HwUnit::squash().energy_pj(8) - 4.0).abs() < 1e-9);
        assert!((HwUnit::squash().area_um2(8) - 7_000.0).abs() < 1e-6);
        assert!((HwUnit::softmax().energy_pj(8) - 4.4).abs() < 1e-9);
    }

    #[test]
    fn growth_is_quadratic() {
        for unit in [HwUnit::mac(), HwUnit::squash(), HwUnit::softmax()] {
            for bits in [4u8, 8, 16] {
                let ratio = unit.energy_pj(2 * bits) / unit.energy_pj(bits);
                assert!((ratio - 4.0).abs() < 1e-6, "{}", unit.name());
                let ratio = unit.area_um2(2 * bits) / unit.area_um2(bits);
                assert!((ratio - 4.0).abs() < 1e-6, "{}", unit.name());
            }
        }
    }

    #[test]
    fn squash_and_softmax_cost_more_than_mac_at_equal_bits() {
        // Paper: "the squash and the softmax functions require more energy
        // and area than a simple MAC operation."
        for bits in 2..=8u8 {
            assert!(HwUnit::squash().energy_pj(bits) > HwUnit::mac().energy_pj(bits));
            assert!(HwUnit::softmax().energy_pj(bits) > HwUnit::mac().energy_pj(bits));
        }
    }

    #[test]
    fn costs_are_monotone_in_bits() {
        let mac = HwUnit::mac();
        let mut last = 0.0;
        for bits in 1..=32u8 {
            let e = mac.energy_pj(bits);
            assert!(e > last);
            last = e;
        }
    }
}
