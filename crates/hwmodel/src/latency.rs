//! CapsAcc-style latency model: cycle counts for one inference on a
//! weight-stationary systolic MAC array (the accelerator class of the
//! paper's reference [17], Marchisio et al., DATE 2019).
//!
//! Each layer's MACs are spread over an `rows × cols` array at one MAC per
//! PE per cycle, plus a pipeline fill/drain overhead per layer and a
//! serialised evaluation cost for each squash/softmax (the units of
//! Fig. 3, which CapsAcc instantiates once per lane).

use crate::archstats::ArchStats;

/// Geometry and clock of the modeled accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accelerator {
    /// Systolic array rows.
    pub rows: usize,
    /// Systolic array columns.
    pub cols: usize,
    /// Parallel squash/softmax lanes.
    pub special_lanes: usize,
    /// Cycles per squash or softmax evaluation (iterative datapath).
    pub special_cycles: u64,
    /// Clock frequency in MHz (for wall-clock conversion).
    pub clock_mhz: f64,
}

impl Accelerator {
    /// The CapsAcc configuration from the paper's reference: a 16×16 MAC
    /// array at 250 MHz with 16 special-function lanes.
    pub fn capsacc() -> Self {
        Accelerator {
            rows: 16,
            cols: 16,
            special_lanes: 16,
            special_cycles: 8,
            clock_mhz: 250.0,
        }
    }

    /// Number of parallel MACs.
    pub fn macs_per_cycle(&self) -> u64 {
        (self.rows * self.cols) as u64
    }

    /// Cycles to run one inference of `arch`.
    ///
    /// # Panics
    ///
    /// Panics when the array is empty.
    pub fn cycles(&self, arch: &ArchStats) -> u64 {
        assert!(self.rows > 0 && self.cols > 0, "empty array");
        let fill_drain = (self.rows + self.cols) as u64;
        arch.layers
            .iter()
            .map(|layer| {
                let mac_cycles = layer.macs.div_ceil(self.macs_per_cycle());
                let special_ops = layer.squash_ops + layer.softmax_ops;
                let special =
                    special_ops.div_ceil(self.special_lanes.max(1) as u64) * self.special_cycles;
                mac_cycles + special + fill_drain
            })
            .sum()
    }

    /// Wall-clock latency for one inference, in microseconds.
    pub fn latency_us(&self, arch: &ArchStats) -> f64 {
        self.cycles(arch) as f64 / self.clock_mhz
    }

    /// Throughput in inferences per second (single-inference pipeline).
    pub fn inferences_per_second(&self, arch: &ArchStats) -> f64 {
        1.0e6 / self.latency_us(arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archstats::{lenet5, shallow_caps};

    #[test]
    fn cycles_scale_inverse_with_array_size() {
        let arch = shallow_caps();
        let small = Accelerator {
            rows: 8,
            cols: 8,
            ..Accelerator::capsacc()
        };
        let big = Accelerator {
            rows: 32,
            cols: 32,
            ..Accelerator::capsacc()
        };
        let (cs, cb) = (small.cycles(&arch), big.cycles(&arch));
        // 16× more PEs ⇒ close to 16× fewer cycles (fill/drain is small).
        let ratio = cs as f64 / cb as f64;
        assert!((10.0..=16.5).contains(&ratio), "{ratio}");
    }

    #[test]
    fn capsnet_slower_than_lenet_on_same_array() {
        let acc = Accelerator::capsacc();
        assert!(acc.cycles(&shallow_caps()) > 100 * acc.cycles(&lenet5()));
    }

    #[test]
    fn latency_matches_cycles_and_clock() {
        let acc = Accelerator::capsacc();
        let arch = lenet5();
        let us = acc.latency_us(&arch);
        assert!((us - acc.cycles(&arch) as f64 / 250.0).abs() < 1e-9);
        assert!(acc.inferences_per_second(&arch) > 0.0);
    }

    #[test]
    fn special_function_cost_counts() {
        // ShallowCaps has squash/softmax work; zeroing the lanes' speed
        // difference must show up in the totals.
        let arch = shallow_caps();
        let fast = Accelerator {
            special_cycles: 1,
            ..Accelerator::capsacc()
        };
        let slow = Accelerator {
            special_cycles: 100,
            ..Accelerator::capsacc()
        };
        assert!(slow.cycles(&arch) > fast.cycles(&arch));
    }

    #[test]
    fn capsacc_latency_is_plausible() {
        // ~202 M MACs on 256 PEs at 250 MHz ⇒ ≈ 3.2 ms; sanity-band check.
        let ms = Accelerator::capsacc().latency_us(&shallow_caps()) / 1000.0;
        assert!((1.0..20.0).contains(&ms), "{ms} ms");
    }
}
