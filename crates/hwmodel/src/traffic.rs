//! Off-chip memory-traffic model: how many bytes per inference a
//! weight-stationary accelerator (CapsAcc-style, the paper's reference
//! [17]) must move, and how quantization shrinks it.
//!
//! The paper's introduction motivates quantization with CapsNets' "memory
//! requirement, memory bandwidth and energy consumption"; this model
//! quantifies the bandwidth half: every weight is fetched once per
//! inference (weight-stationary reuse within a layer), every activation is
//! written once and read once by the next layer.

use crate::archstats::ArchStats;

/// Per-layer bit widths for traffic estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficBits {
    /// Stored weight wordlength.
    pub weight_bits: u8,
    /// Stored activation wordlength.
    pub act_bits: u8,
}

/// Activation counts are not tracked by [`ArchStats`] layers directly, so
/// the traffic model takes them explicitly (one output-activation count
/// per layer, in values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficModel<'a> {
    arch: &'a ArchStats,
    activations: Vec<u64>,
}

impl<'a> TrafficModel<'a> {
    /// Creates the model from an architecture plus per-layer output
    /// activation counts.
    ///
    /// # Panics
    ///
    /// Panics when the counts do not match the layer count.
    pub fn new(arch: &'a ArchStats, activations: Vec<u64>) -> Self {
        assert_eq!(
            activations.len(),
            arch.layers.len(),
            "one activation count per layer required"
        );
        TrafficModel { arch, activations }
    }

    /// DRAM traffic in bytes for one inference at the given per-layer
    /// widths: weights fetched once; every activation written by its
    /// producer and read by its consumer (the last layer's output is only
    /// written).
    ///
    /// # Panics
    ///
    /// Panics when `bits.len()` does not match the layer count.
    pub fn bytes_per_inference(&self, bits: &[TrafficBits]) -> u64 {
        assert_eq!(
            bits.len(),
            self.arch.layers.len(),
            "per-layer widths required"
        );
        let mut total_bits = 0u64;
        for (i, (layer, b)) in self.arch.layers.iter().zip(bits).enumerate() {
            total_bits += layer.params * b.weight_bits as u64;
            // Producer write.
            total_bits += self.activations[i] * b.act_bits as u64;
            // Consumer read (all but the final output).
            if i + 1 < self.arch.layers.len() {
                total_bits += self.activations[i] * bits[i + 1].act_bits as u64;
            }
        }
        total_bits.div_ceil(8)
    }

    /// Convenience: uniform widths everywhere.
    pub fn uniform_bytes(&self, weight_bits: u8, act_bits: u8) -> u64 {
        let bits = vec![
            TrafficBits {
                weight_bits,
                act_bits,
            };
            self.arch.layers.len()
        ];
        self.bytes_per_inference(&bits)
    }

    /// Traffic reduction factor of `bits` relative to a 32-bit baseline.
    pub fn reduction(&self, bits: &[TrafficBits]) -> f64 {
        self.uniform_bytes(32, 32) as f64 / self.bytes_per_inference(bits) as f64
    }
}

/// Output activation counts for the full-size ShallowCaps of
/// [`crate::archstats::shallow_caps`]: conv 20×20×256, primary 1152 × 8-D
/// capsules, digit 10 × 16-D capsules.
pub fn shallow_caps_activations() -> Vec<u64> {
    vec![20 * 20 * 256, 1152 * 8, 10 * 16]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archstats::shallow_caps;

    fn model_under_test(arch: &ArchStats) -> TrafficModel<'_> {
        TrafficModel::new(arch, shallow_caps_activations())
    }

    #[test]
    fn uniform_32bit_matches_hand_count() {
        let arch = shallow_caps();
        let m = model_under_test(&arch);
        let params: u64 = arch.layers.iter().map(|l| l.params).sum();
        let acts: u64 = shallow_caps_activations().iter().sum();
        let last = *shallow_caps_activations().last().unwrap();
        // Weights once + every activation written once + all but the last
        // read once.
        let expected_bits = params * 32 + acts * 32 + (acts - last) * 32;
        assert_eq!(m.uniform_bytes(32, 32), expected_bits.div_ceil(8));
    }

    #[test]
    fn quantization_reduces_traffic_proportionally() {
        let arch = shallow_caps();
        let m = model_under_test(&arch);
        let full = m.uniform_bytes(32, 32);
        let quarter = m.uniform_bytes(8, 8);
        assert_eq!(full, quarter * 4);
    }

    #[test]
    fn mixed_widths_count_consumer_reads_at_consumer_width() {
        let arch = shallow_caps();
        let m = model_under_test(&arch);
        let bits = vec![
            TrafficBits {
                weight_bits: 8,
                act_bits: 8,
            },
            TrafficBits {
                weight_bits: 8,
                act_bits: 4,
            },
            TrafficBits {
                weight_bits: 8,
                act_bits: 4,
            },
        ];
        // Layer-0 activations are written at 8 bits and read by layer 1 at
        // the layer-1 width (4 bits): total must be less than uniform 8.
        assert!(m.bytes_per_inference(&bits) < m.uniform_bytes(8, 8));
        assert!(m.reduction(&bits) > 4.0);
    }

    #[test]
    #[should_panic(expected = "per-layer widths")]
    fn rejects_wrong_width_count() {
        let arch = shallow_caps();
        let m = model_under_test(&arch);
        m.bytes_per_inference(&[]);
    }
}
