//! # qcn-hwmodel
//!
//! Hardware cost models and architecture statistics for the Q-CapsNets
//! reproduction (Marchisio et al., DAC 2020):
//!
//! * [`HwUnit`] — quadratic energy/area models of fixed-point MAC, squash
//!   and softmax units, calibrated to the paper's UMC-65nm synthesis
//!   results (Figs. 2–3);
//! * [`archstats`] — parameter/MAC/squash/softmax accounting for
//!   ShallowCaps, DeepCaps, AlexNet and LeNet-5 (Fig. 1);
//! * [`energy`] — per-inference energy estimation combining the two,
//!   quantifying the §IV-D claim that aggressive dynamic-routing
//!   quantization yields outsized energy savings.
//!
//! # Examples
//!
//! ```
//! use qcn_hwmodel::{archstats, HwUnit};
//!
//! // Fig. 1: ShallowCaps is more compute-intensive per stored bit than
//! // AlexNet.
//! let caps = archstats::shallow_caps();
//! let alex = archstats::alexnet();
//! assert!(caps.macs_per_mbit() > alex.macs_per_mbit());
//!
//! // Fig. 2: an 8-bit MAC costs 1/16 the energy of a 32-bit MAC.
//! let mac = HwUnit::mac();
//! assert!((mac.energy_pj(32) / mac.energy_pj(8) - 16.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod archstats;
mod costmodel;
pub mod energy;
pub mod latency;
pub mod traffic;

pub use archstats::{ArchLayer, ArchStats};
pub use costmodel::HwUnit;
pub use energy::{inference_energy_nj, uniform_energy_nj, LayerBits};
