//! Architecture statistics — parameter counts, MAC counts, squash/softmax
//! operation counts — for the networks the paper compares in Fig. 1
//! (ShallowCaps, AlexNet, LeNet-5) plus the full-size DeepCaps.
//!
//! All numbers are derived from layer geometry, not hard-coded, so the
//! tests can cross-check them against the well-known totals (e.g. AlexNet's
//! ≈ 61 M parameters).

/// One layer's accounting entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchLayer {
    /// Layer name.
    pub name: String,
    /// Stored parameters (weights + biases).
    pub params: u64,
    /// Multiply-accumulate operations per inference.
    pub macs: u64,
    /// Squash evaluations per inference (capsule layers only).
    pub squash_ops: u64,
    /// Softmax evaluations per inference (routing layers only; one
    /// evaluation per coupling-coefficient vector per iteration).
    pub softmax_ops: u64,
}

/// A whole architecture's accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchStats {
    /// Architecture name.
    pub name: String,
    /// Layers in order.
    pub layers: Vec<ArchLayer>,
}

impl ArchStats {
    /// Total parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total MACs per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total squash evaluations per inference.
    pub fn total_squash_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.squash_ops).sum()
    }

    /// Total softmax evaluations per inference.
    pub fn total_softmax_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.softmax_ops).sum()
    }

    /// Weight memory in megabits at `bits` per parameter (Fig. 1 uses 32).
    pub fn memory_mbit(&self, bits: u64) -> f64 {
        (self.total_params() * bits) as f64 / 1.0e6
    }

    /// The Fig. 1 computational-intensity metric: MACs per megabit of
    /// weight memory (at 32-bit weights), in millions.
    pub fn macs_per_mbit(&self) -> f64 {
        self.total_macs() as f64 / 1.0e6 / self.memory_mbit(32)
    }
}

/// Builders for the accounting entries.
mod build {
    use super::ArchLayer;

    /// Standard convolution: `cout·cin·k²` weights (+bias), one MAC per
    /// weight per output pixel.
    pub fn conv(name: &str, cin: u64, cout: u64, k: u64, oh: u64, ow: u64) -> ArchLayer {
        ArchLayer {
            name: name.into(),
            params: cout * cin * k * k + cout,
            macs: oh * ow * cout * cin * k * k,
            squash_ops: 0,
            softmax_ops: 0,
        }
    }

    /// Fully connected layer.
    pub fn fc(name: &str, cin: u64, cout: u64) -> ArchLayer {
        ArchLayer {
            name: name.into(),
            params: cin * cout + cout,
            macs: cin * cout,
            squash_ops: 0,
            softmax_ops: 0,
        }
    }

    /// Primary capsule layer: a convolution plus one squash per capsule.
    pub fn primary_caps(
        name: &str,
        cin: u64,
        types: u64,
        dim: u64,
        k: u64,
        oh: u64,
        ow: u64,
    ) -> ArchLayer {
        let mut layer = conv(name, cin, types * dim, k, oh, ow);
        layer.squash_ops = types * oh * ow;
        layer
    }

    /// Convolutional capsule layer (DeepCaps): conv + squash per capsule.
    pub fn conv_caps(
        name: &str,
        cin: u64,
        types: u64,
        dim: u64,
        k: u64,
        oh: u64,
        ow: u64,
    ) -> ArchLayer {
        primary_caps(name, cin, types, dim, k, oh, ow)
    }

    /// Fully-connected capsule layer with dynamic routing: vote MACs plus
    /// `iters` rounds of weighted-sum and agreement MACs, `iters` softmax
    /// evaluations per input capsule and `iters` squashes per output
    /// capsule.
    pub fn caps_fc(
        name: &str,
        in_caps: u64,
        in_dim: u64,
        out_caps: u64,
        out_dim: u64,
        iters: u64,
    ) -> ArchLayer {
        let votes = in_caps * out_caps * in_dim * out_dim;
        let per_iter = 2 * in_caps * out_caps * out_dim; // weighted sum + agreement
        ArchLayer {
            name: name.into(),
            params: votes,
            macs: votes + iters * per_iter,
            squash_ops: iters * out_caps,
            softmax_ops: iters * in_caps,
        }
    }
}

/// ShallowCaps for 28×28 MNIST (paper Fig. 5): Conv 9×9×256 →
/// PrimaryCaps 9×9 s2 (32 × 8-D) → DigitCaps (10 × 16-D, 3 iterations).
pub fn shallow_caps() -> ArchStats {
    ArchStats {
        name: "ShallowCaps".into(),
        layers: vec![
            build::conv("Conv1", 1, 256, 9, 20, 20),
            build::primary_caps("PrimaryCaps", 256, 32, 8, 9, 6, 6),
            build::caps_fc("DigitCaps", 1152, 8, 10, 16, 3),
        ],
    }
}

/// Full-size DeepCaps for 64×64 inputs (paper Fig. 7): conv stem, four
/// capsule cells of four ConvCaps each (the last cell's skip branch
/// routing), FC caps 10 × 32-D.
pub fn deep_caps(in_channels: u64) -> ArchStats {
    let mut layers = vec![build::conv("Conv1", in_channels, 128, 3, 64, 64)];
    // (types, dim, spatial side after the cell's stride-2 first conv).
    let cells: [(u64, u64, u64); 4] = [(32, 4, 32), (32, 8, 16), (32, 8, 8), (32, 8, 4)];
    let mut cin = 128u64;
    for (i, &(types, dim, side)) in cells.iter().enumerate() {
        let cout = types * dim;
        let cell = i + 2;
        layers.push(build::conv_caps(
            &format!("B{cell}.1"),
            cin,
            types,
            dim,
            3,
            side,
            side,
        ));
        for j in 2..=3 {
            layers.push(build::conv_caps(
                &format!("B{cell}.{j}"),
                cout,
                types,
                dim,
                3,
                side,
                side,
            ));
        }
        // Skip branch; the last cell's skip performs 3-iteration routing,
        // approximated as a conv with tripled routing softmax/squash work.
        let mut skip = build::conv_caps(&format!("B{cell}.skip"), cin, types, dim, 3, side, side);
        if i == cells.len() - 1 {
            skip.softmax_ops = 3 * types * side * side;
            skip.squash_ops = 3 * types * side * side;
        }
        layers.push(skip);
        cin = cout;
    }
    // 32 types × 4×4 positions, 8-D each.
    layers.push(build::caps_fc("FcCaps", 32 * 4 * 4, 8, 10, 32, 3));
    ArchStats {
        name: "DeepCaps".into(),
        layers,
    }
}

/// AlexNet (Krizhevsky et al., 2012) at its canonical geometry.
pub fn alexnet() -> ArchStats {
    ArchStats {
        name: "AlexNet".into(),
        layers: vec![
            build::conv("Conv1", 3, 96, 11, 55, 55),
            build::conv("Conv2", 48, 256, 5, 27, 27),
            build::conv("Conv3", 256, 384, 3, 13, 13),
            build::conv("Conv4", 192, 384, 3, 13, 13),
            build::conv("Conv5", 192, 256, 3, 13, 13),
            build::fc("Fc6", 9216, 4096),
            build::fc("Fc7", 4096, 4096),
            build::fc("Fc8", 4096, 1000),
        ],
    }
}

/// LeNet-5 (LeCun et al., 1998) on 32×32 inputs.
pub fn lenet5() -> ArchStats {
    ArchStats {
        name: "LeNet".into(),
        layers: vec![
            build::conv("Conv1", 1, 6, 5, 28, 28),
            build::conv("Conv2", 6, 16, 5, 10, 10),
            build::fc("Fc3", 400, 120),
            build::fc("Fc4", 120, 84),
            build::fc("Fc5", 84, 10),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shallow_caps_matches_known_totals() {
        let s = shallow_caps();
        // Conv1: 256·81 + 256 = 20 992.
        assert_eq!(s.layers[0].params, 20_992);
        // PrimaryCaps: 256·256·81 + 256 = 5 308 672.
        assert_eq!(s.layers[1].params, 5_308_672);
        // DigitCaps: 1152·10·8·16 = 1 474 560.
        assert_eq!(s.layers[2].params, 1_474_560);
        // ≈ 6.8 M params → ≈ 218 Mbit at FP32 (paper: "217 Mbit").
        let mem = s.memory_mbit(32);
        assert!((215.0..222.0).contains(&mem), "{mem}");
    }

    #[test]
    fn alexnet_matches_known_totals() {
        let a = alexnet();
        let params = a.total_params();
        assert!(
            (60_000_000..63_000_000).contains(&params),
            "AlexNet ≈ 61 M params, got {params}"
        );
        let macs = a.total_macs();
        assert!(
            (650_000_000..800_000_000).contains(&macs),
            "AlexNet ≈ 0.7 G MACs, got {macs}"
        );
    }

    #[test]
    fn lenet_matches_known_totals() {
        let l = lenet5();
        assert_eq!(l.total_params(), 61_706);
        let macs = l.total_macs();
        assert!((380_000..450_000).contains(&macs), "{macs}");
    }

    #[test]
    fn fig1_memory_ordering() {
        // Fig. 1 (left): AlexNet > ShallowCaps > LeNet in memory.
        let (s, a, l) = (shallow_caps(), alexnet(), lenet5());
        assert!(a.memory_mbit(32) > s.memory_mbit(32));
        assert!(s.memory_mbit(32) > l.memory_mbit(32));
    }

    #[test]
    fn fig1_compute_intensity_ordering() {
        // Fig. 1 (right): ShallowCaps has the highest MACs/memory ratio —
        // more compute-intensive per stored bit than both CNNs.
        let (s, a, l) = (shallow_caps(), alexnet(), lenet5());
        assert!(
            s.macs_per_mbit() > a.macs_per_mbit(),
            "ShallowCaps {} vs AlexNet {}",
            s.macs_per_mbit(),
            a.macs_per_mbit()
        );
        assert!(s.macs_per_mbit() > l.macs_per_mbit());
    }

    #[test]
    fn capsnets_have_squash_and_softmax_work() {
        let s = shallow_caps();
        assert!(s.total_squash_ops() > 0);
        assert!(s.total_softmax_ops() > 0);
        // CNNs have none.
        assert_eq!(alexnet().total_squash_ops(), 0);
        assert_eq!(lenet5().total_softmax_ops(), 0);
    }

    #[test]
    fn deepcaps_is_smaller_than_shallowcaps_in_memory() {
        // DeepCaps' headline: far fewer parameters than ShallowCaps
        // (≈ 7 M vs 8.2 M at this accounting — both under AlexNet).
        let d = deep_caps(3);
        assert!(d.total_params() < alexnet().total_params());
        assert!(d.layers.len() == 1 + 4 * 4 + 1);
    }
}
