//! # qcn-repro
//!
//! Top-level facade of the Q-CapsNets reproduction (Marchisio et al.,
//! DAC 2020). Re-exports every workspace crate under one roof so the
//! runnable examples and the cross-crate integration tests have a single
//! dependency. See the repository README for the crate map and
//! EXPERIMENTS.md for the paper-versus-measured results.
//!
//! # Examples
//!
//! ```
//! use qcn_repro::datasets::SynthKind;
//! use qcn_repro::capsnet::{ShallowCaps, ShallowCapsConfig};
//!
//! let model = ShallowCaps::new(ShallowCapsConfig::small(1), 0);
//! let test = SynthKind::Mnist.generate(10, 0);
//! assert_eq!(test.num_classes(), 10);
//! assert_eq!(model.config().image_side, 16);
//! ```

#![warn(missing_docs)]

pub use qcapsnets as framework;
pub use qcn_autograd as autograd;
pub use qcn_bench as bench;
pub use qcn_capsnet as capsnet;
pub use qcn_chaos as chaos;
pub use qcn_datasets as datasets;
pub use qcn_fixed as fixed;
pub use qcn_hwmodel as hwmodel;
pub use qcn_intinfer as intinfer;
pub use qcn_router as router;
pub use qcn_serve as serve;
pub use qcn_telemetry as telemetry;
pub use qcn_tensor as tensor;
