#!/usr/bin/env bash
# Rebuilds the repository's seed commit (the pre-optimisation kernels) in
# target/seed-baseline and times the same kernel shapes bench_report uses,
# writing target/seed-baseline/seed_kernels.tsv. Run this once, then
# `cargo run --release -p qcn-bench --bin bench_report` picks the TSV up
# and adds speedup-vs-seed columns to BENCH_kernels.json.
#
# The seed crates are built against the vendored `rand` shim (API-compatible
# with the rand 0.8 surface they use), so this works fully offline.
set -euo pipefail

root=$(git rev-parse --show-toplevel)
seed=$(git -C "$root" rev-list --max-parents=0 HEAD)
dir="$root/target/seed-baseline"

echo "seed commit: $seed"
rm -rf "$dir"
mkdir -p "$dir"
git -C "$root" archive "$seed" \
    crates/tensor crates/autograd crates/fixed crates/datasets crates/capsnet \
    | tar -x -C "$dir"

# The vendored rand shim needs explicit f32 literal annotations the real
# rand 0.8 could infer; overlay the current tree's copies of the two
# affected dataset files (annotation-only diffs — no timed code changes).
cp "$root/crates/datasets/src/synth.rs" "$dir/crates/datasets/src/synth.rs"
cp "$root/crates/datasets/src/augment.rs" "$dir/crates/datasets/src/augment.rs"

cat > "$dir/Cargo.toml" <<EOF
[workspace]
members = [
    "crates/tensor", "crates/autograd", "crates/fixed",
    "crates/datasets", "crates/capsnet", "seedbench",
]
resolver = "2"

[workspace.package]
version = "0.1.0"
edition = "2021"
license = "MIT OR Apache-2.0"
repository = "https://github.com/qcapsnets/qcapsnets"
authors = ["Q-CapsNets reproduction contributors"]

[workspace.dependencies]
qcn-tensor = { path = "crates/tensor" }
qcn-autograd = { path = "crates/autograd" }
qcn-fixed = { path = "crates/fixed" }
qcn-datasets = { path = "crates/datasets" }
qcn-capsnet = { path = "crates/capsnet" }
rand = { path = "$root/vendor/rand" }
proptest = { path = "$root/vendor/proptest" }

[profile.release]
opt-level = 3
EOF

mkdir -p "$dir/seedbench/src"
cat > "$dir/seedbench/Cargo.toml" <<'EOF'
[package]
name = "seedbench"
version.workspace = true
edition.workspace = true
license.workspace = true
repository.workspace = true
authors.workspace = true

[dependencies]
qcn-tensor.workspace = true
qcn-capsnet.workspace = true
qcn-fixed.workspace = true
rand.workspace = true
EOF

cat > "$dir/seedbench/src/main.rs" <<'EOF'
//! Times the seed commit's kernels on the shapes bench_report uses and
//! prints `name<TAB>median_ms` lines.

use qcn_capsnet::layers::{caps_votes_infer, CapsFc};
use qcn_capsnet::{LayerQuant, QuantCtx};
use qcn_fixed::RoundingScheme;
use qcn_tensor::conv::{conv2d, Conv2dSpec};
use qcn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

fn measure(mut f: impl FnMut()) -> f64 {
    f();
    let probe = Instant::now();
    f();
    let est = probe.elapsed().as_secs_f64();
    let iters = ((0.005 / est.max(1e-9)).ceil() as usize).clamp(1, 10_000);
    (0..15)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e3 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let ma = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    let mb = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    let ba = Tensor::rand_uniform([16, 64, 64], -1.0, 1.0, &mut rng);
    let bb = Tensor::rand_uniform([16, 64, 64], -1.0, 1.0, &mut rng);
    let conv_in = Tensor::rand_uniform([8, 16, 16, 16], -1.0, 1.0, &mut rng);
    let conv_w = Tensor::rand_uniform([32, 16, 3, 3], -1.0, 1.0, &mut rng);
    let conv_b = Tensor::rand_uniform([32], -1.0, 1.0, &mut rng);
    let spec = Conv2dSpec::new(3, 3, 1, 1);
    let votes_in = Tensor::rand_uniform([16, 128, 4], -1.0, 1.0, &mut rng);
    let votes_w = Tensor::rand_uniform([128, 10, 4, 8], -1.0, 1.0, &mut rng);
    let layer = CapsFc::new(128, 4, 10, 8, 3, &mut rng);
    let caps_in = Tensor::rand_uniform([16, 128, 4], -0.5, 0.5, &mut rng).squash_axis(2);
    let fp = LayerQuant::full_precision();

    let rows = [
        ("matmul 256x256x256 blocked", measure(|| {
            black_box(black_box(&ma).matmul(black_box(&mb)));
        })),
        ("bmm 16x64x64x64", measure(|| {
            black_box(black_box(&ba).bmm(black_box(&bb)));
        })),
        ("conv2d 8x16x16x16 -> 32ch 3x3", measure(|| {
            black_box(conv2d(black_box(&conv_in), black_box(&conv_w), Some(&conv_b), spec));
        })),
        ("caps_votes 16x128x4 -> 10x8", measure(|| {
            black_box(caps_votes_infer(black_box(&votes_in), black_box(&votes_w)));
        })),
        ("caps_fc routing fp32 (3 iters)", measure(|| {
            let mut ctx = QuantCtx::new(RoundingScheme::Truncation, 0);
            black_box(layer.infer(black_box(&caps_in), &fp, &mut ctx));
        })),
    ];
    for (name, ms) in rows {
        println!("{name}\t{ms:.4}");
    }
}
EOF

cd "$dir"
cargo build --release -p seedbench
./target/release/seedbench | tee seed_kernels.tsv
echo "wrote $dir/seed_kernels.tsv"
