#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

cargo fmt --check
cargo build --release
cargo test -q
cargo test -q --test integer_inference_equivalence
cargo clippy --workspace -- -D warnings
cargo bench --no-run
