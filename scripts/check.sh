#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

cargo fmt --check
cargo build --release
cargo test -q
cargo test -q --test integer_inference_equivalence
# Serving soak: the determinism contract must hold for every kernel
# thread count (serial, even split, odd split) — both for in-process
# submits and over the socket front-end. `--router-smoke` additionally
# runs the replica-fleet failover soak (kill + same-port restart under
# load) at each thread count.
for t in 1 2 7; do
  QCN_NUM_THREADS=$t cargo test -q --test serving_determinism
  QCN_NUM_THREADS=$t cargo test -q --test serving_net_equivalence
  if [[ "${1:-}" == "--router-smoke" ]]; then
    QCN_NUM_THREADS=$t cargo test -q --test router_failover
  fi
  # Chaos smoke: the seeded fault storm must resolve every request to a
  # bit-identical response or a typed error at each thread count, across
  # a fixed seed matrix, and the disabled path must stay free.
  if [[ "${1:-}" == "--chaos-smoke" ]]; then
    for seed in 1 42 123456789; do
      QCN_NUM_THREADS=$t QCN_CHAOS_SEED=$seed cargo test -q --test chaos_soak
    done
    QCN_NUM_THREADS=$t cargo test -q -p qcn-chaos --test chaos_overhead
  fi
done
# Wire robustness: untrusted-byte decoders must fail typed, never panic.
cargo test -q --test wire_robustness
# Telemetry smoke: the metrics endpoint and Stats wire frame must expose
# the expected series under load, and the bit-identity suites must hold
# with telemetry hard-disabled too.
cargo test -q --test observability
QCN_TELEMETRY=0 cargo test -q --test observability
QCN_TELEMETRY=0 cargo test -q --test serving_determinism
cargo clippy --all-targets -- -D warnings
cargo bench --no-run
# Search-acceleration smoke: one end-to-end Algorithm 1 run, accelerated
# vs naive, asserting the bit-identical-selection contract.
cargo run --release -p qcn-bench --bin bench_report -- --search-smoke
