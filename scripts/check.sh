#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo bench --no-run
