//! Reproducibility: the entire pipeline — data generation, training,
//! quantization search, stochastic rounding — is deterministic in its
//! seeds, a design requirement of the reproduction (DESIGN.md §5).

use qcn_repro::capsnet::{
    accuracy, train, CapsNet, ModelQuant, ShallowCaps, ShallowCapsConfig, TrainConfig,
};
use qcn_repro::datasets::augment::AugmentPolicy;
use qcn_repro::datasets::SynthKind;
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::{run, FrameworkConfig};

fn tiny_config() -> ShallowCapsConfig {
    ShallowCapsConfig {
        conv_channels: 8,
        primary_types: 3,
        digit_dim: 4,
        ..ShallowCapsConfig::small(1)
    }
}

fn pipeline() -> (Vec<f32>, f32) {
    let (train_set, test_set) = SynthKind::FashionMnist.train_test(150, 60, 17);
    let mut model = ShallowCaps::new(tiny_config(), 17);
    train(
        &mut model,
        &train_set,
        &test_set,
        &TrainConfig {
            epochs: 2,
            batch_size: 30,
            augment: AugmentPolicy::fashion_mnist(),
            seed: 17,
            ..TrainConfig::default()
        },
    );
    let report = run(
        &model,
        &test_set,
        &FrameworkConfig {
            acc_tol: 0.1,
            scheme: RoundingScheme::Stochastic,
            seed: 17,
            ..FrameworkConfig::default()
        },
    );
    let first_param = model.params()[0].data().to_vec();
    let acc = report.outcome.results()[0].accuracy;
    (first_param, acc)
}

#[test]
fn full_pipeline_is_seed_deterministic() {
    let (params_a, acc_a) = pipeline();
    let (params_b, acc_b) = pipeline();
    assert_eq!(params_a, params_b, "training diverged between runs");
    assert_eq!(acc_a, acc_b, "framework accuracy diverged between runs");
}

#[test]
fn stochastic_rounding_inference_is_seed_deterministic() {
    let model = ShallowCaps::new(tiny_config(), 3);
    let test = SynthKind::Mnist.generate(40, 3);
    let config = ModelQuant {
        layers: vec![qcn_repro::capsnet::LayerQuant::uniform(4); 3],
        scheme: RoundingScheme::Stochastic,
        seed: 99,
    };
    let qmodel = model.with_quantized_weights(&config);
    let a = accuracy(&qmodel, &test, &config, 20);
    let b = accuracy(&qmodel, &test, &config, 20);
    assert_eq!(a, b);
}

#[test]
fn different_sr_seeds_can_differ() {
    // Not a hard guarantee per-case, but across a batch of borderline
    // values two seeds should round at least one element differently.
    use qcn_repro::fixed::{QFormat, Quantizer};
    use qcn_repro::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let t = Tensor::from_fn([512], |i| (i[0] as f32 / 512.0) - 0.5);
    let q = Quantizer::new(QFormat::with_frac(3), RoundingScheme::Stochastic);
    let a = q.quantize(&t, &mut StdRng::seed_from_u64(1));
    let b = q.quantize(&t, &mut StdRng::seed_from_u64(2));
    assert_ne!(a, b);
}
