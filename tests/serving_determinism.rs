//! Multi-client soak of the serving layer's determinism contract: every
//! response must be bit-identical to a sequential single-sample inference
//! of the same request — regardless of arrival order, batch composition,
//! worker count, or kernel thread count.
//!
//! Several client threads submit interleaved, per-client-shuffled request
//! streams against three warm engines (fake-quant RTN, fake-quant SR, and
//! the integer engine in float-exact mode) behind one dynamic-batching
//! server. The oracle for each `(engine, sample)` pair is computed up
//! front by the plain one-call-per-sample datapath with a fresh context
//! per sample — exactly what `ServeEngine::infer_batch` promises to match.
//!
//! CI runs this suite under `QCN_NUM_THREADS` ∈ {1, 2, 7}, so the ambient
//! kernel thread count is part of the matrix, not something the test sets.

use qcn_repro::capsnet::{CapsNet, ModelQuant, QuantCtx, ShallowCaps, ShallowCapsConfig};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::export::pack_model;
use qcn_repro::intinfer::{IntModel, UnitMode};
use qcn_repro::serve::{FakeQuantEngine, IntEngine, ModelRegistry, ServeConfig, Server};
use qcn_repro::tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const IN_FRAC: u8 = 5;
const SAMPLES: usize = 16;
const CLIENTS: usize = 4;
/// Passes each client makes over the full (engine × sample) grid.
const ROUNDS: usize = 2;

fn shallow_config(scheme: RoundingScheme) -> ModelQuant {
    let mut config = ModelQuant::uniform(3, 5, scheme);
    for lq in &mut config.layers {
        lq.dr_frac = Some(4);
    }
    config.seed = 0xBEEF;
    config
}

/// Deterministic on-grid sample `[1, 16, 16]` at Q1.5.
fn sample(seed: i64) -> Tensor {
    Tensor::from_fn([1, 16, 16], |idx| {
        let i = (idx[1] * 16 + idx[2]) as i64;
        ((i * 37 + seed * 11).rem_euclid(32)) as f32 / 32.0
    })
}

/// The reference answer for one fake-quant request: quantized weights,
/// fresh context, one sample.
fn fq_reference(model: &ShallowCaps, config: &ModelQuant, x: &Tensor) -> Vec<f32> {
    let qmodel = model.with_quantized_weights(config);
    let mut ctx = QuantCtx::from_config(config);
    let batched = Tensor::from_vec(x.data().to_vec(), [1, 1, 16, 16]).unwrap();
    qmodel.infer(&batched, config, &mut ctx).data().to_vec()
}

/// The reference answer for one integer-engine request.
fn int_reference(engine: &IntModel, x: &Tensor) -> Vec<f32> {
    let batched = Tensor::from_vec(x.data().to_vec(), [1, 1, 16, 16]).unwrap();
    engine
        .infer(&batched, IN_FRAC, UnitMode::FloatExact)
        .data()
        .to_vec()
}

/// Tiny deterministic LCG so each client gets its own stable shuffle.
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    order
}

#[test]
fn soaked_responses_are_bit_identical_to_sequential_inference() {
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
    let rtn = shallow_config(RoundingScheme::RoundToNearest);
    let sr = shallow_config(RoundingScheme::Stochastic);
    let int_model = IntModel::load(&model.descriptor(), &pack_model(&model, &rtn)).unwrap();

    // Oracle table: (model id, sample index) -> expected output bits.
    let samples: Vec<Tensor> = (0..SAMPLES).map(|i| sample(i as i64)).collect();
    let mut oracle: BTreeMap<(&str, usize), Vec<f32>> = BTreeMap::new();
    for (i, x) in samples.iter().enumerate() {
        oracle.insert(("fq-rtn", i), fq_reference(&model, &rtn, x));
        oracle.insert(("fq-sr", i), fq_reference(&model, &sr, x));
        oracle.insert(("int-rtn", i), int_reference(&int_model, x));
    }

    let mut registry = ModelRegistry::new();
    registry
        .register("fq-rtn", FakeQuantEngine::new(&model, rtn, [1, 16, 16]))
        .unwrap();
    registry
        .register("fq-sr", FakeQuantEngine::new(&model, sr, [1, 16, 16]))
        .unwrap();
    registry
        .register(
            "int-rtn",
            IntEngine::new(int_model, IN_FRAC, UnitMode::FloatExact, [1, 16, 16]),
        )
        .unwrap();

    let ids = ["fq-rtn", "fq-sr", "int-rtn"];
    let total = CLIENTS * ROUNDS * ids.len() * SAMPLES;
    let server = Arc::new(Server::start(
        registry,
        ServeConfig {
            max_batch: 4,
            queue_capacity: total, // saturation is covered elsewhere
            batch_window: Duration::from_millis(1),
            request_timeout: None,
            workers: 3,
            shed_watermark: None,
        },
    ));

    let oracle = Arc::new(oracle);
    let samples = Arc::new(samples);
    let mut clients = Vec::new();
    for client in 0..CLIENTS {
        let server = Arc::clone(&server);
        let oracle = Arc::clone(&oracle);
        let samples = Arc::clone(&samples);
        clients.push(thread::spawn(move || {
            for round in 0..ROUNDS {
                // Fire a full shuffled pass without waiting in between, so
                // requests from all clients interleave into mixed batches.
                let order = shuffled(ids.len() * SAMPLES, (client * ROUNDS + round) as u64 + 1);
                let pending: Vec<_> = order
                    .iter()
                    .map(|&k| {
                        let (id, i) = (ids[k % ids.len()], k / ids.len());
                        let p = server
                            .submit(id, samples[i].clone())
                            .expect("queue sized for the full soak");
                        (id, i, p)
                    })
                    .collect();
                for (id, i, p) in pending {
                    let out = p.wait().expect("soak request failed");
                    let want = &oracle[&(id, i)];
                    assert_eq!(out.data().len(), want.len(), "{id} sample {i} shape");
                    let got_bits: Vec<u32> = out.data().iter().map(|v| v.to_bits()).collect();
                    let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got_bits, want_bits, "client {client} {id} sample {i}");
                }
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread panicked");
    }

    let stats = server.shutdown();
    assert_eq!(stats.submitted, total as u64);
    assert_eq!(stats.completed, total as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.expired, 0);
}
