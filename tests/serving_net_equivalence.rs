//! Wire-layer equivalence: a socket round-trip must return **bit-identical
//! capsules** to an in-process `Server::submit` of the same request — for
//! both engines (fake-quant f32 and true integer fixed-point), every
//! rounding scheme (TRN / RTN / RTNE / SR), and whatever kernel thread
//! count the environment sets (CI runs this suite under `QCN_NUM_THREADS`
//! ∈ {1, 2, 7}).
//!
//! The wire format carries `f32` values as raw bits (`to_bits`/`from_bits`,
//! never a format conversion), so the socket layer adds nothing to the
//! serving layer's determinism contract — which this suite proves by
//! comparing every remote response against the in-process answer, and both
//! against a cold single-sample oracle.

use qcn_repro::capsnet::{CapsNet, ModelQuant, QuantCtx, ShallowCaps, ShallowCapsConfig};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::export::pack_model;
use qcn_repro::intinfer::{IntModel, UnitMode};
use qcn_repro::serve::{
    Client, FakeQuantEngine, IntEngine, ModelRegistry, ServeConfig, Server, SocketServer,
};
use qcn_repro::tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const IN_FRAC: u8 = 5;
const SAMPLES: usize = 6;

fn shallow_config(scheme: RoundingScheme) -> ModelQuant {
    let mut config = ModelQuant::uniform(3, 5, scheme);
    for lq in &mut config.layers {
        lq.dr_frac = Some(4);
    }
    config.seed = 0xBEEF;
    config
}

/// Deterministic on-grid sample `[1, 16, 16]` at Q1.5.
fn sample(seed: i64) -> Tensor {
    Tensor::from_fn([1, 16, 16], |idx| {
        let i = (idx[1] * 16 + idx[2]) as i64;
        ((i * 37 + seed * 11).rem_euclid(32)) as f32 / 32.0
    })
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Every engine × scheme behind one server, one socket front-end on an
/// ephemeral port. For each (engine, sample): the cold oracle, the
/// in-process `submit`, and a pipelined socket round-trip must all agree
/// bit for bit.
#[test]
fn socket_round_trip_is_bit_identical_to_in_process_submit() {
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
    let samples: Vec<Tensor> = (0..SAMPLES).map(|i| sample(i as i64)).collect();

    let mut registry = ModelRegistry::new();
    let mut ids: Vec<String> = Vec::new();
    let mut oracle: BTreeMap<(String, usize), Vec<u32>> = BTreeMap::new();
    for scheme in RoundingScheme::EXTENDED {
        let config = shallow_config(scheme);
        let packed = pack_model(&model, &config);
        let int_model = IntModel::load(&model.descriptor(), &packed).unwrap();

        // Cold single-sample oracles: exactly what both the in-process and
        // the remote path must reproduce.
        let qmodel = model.with_quantized_weights(&config);
        for (i, x) in samples.iter().enumerate() {
            let single = Tensor::from_vec(x.data().to_vec(), [1, 1, 16, 16]).unwrap();
            let mut ctx = QuantCtx::from_config(&config);
            let fq_want = qmodel.infer(&single, &config, &mut ctx);
            oracle.insert((format!("fq-{scheme}"), i), bits(&fq_want));
            let int_want = int_model.infer(&single, IN_FRAC, UnitMode::FloatExact);
            oracle.insert((format!("int-{scheme}"), i), bits(&int_want));
        }

        registry
            .register(
                format!("fq-{scheme}"),
                FakeQuantEngine::new(&model, config, [1, 16, 16]),
            )
            .unwrap();
        registry
            .register(
                format!("int-{scheme}"),
                IntEngine::new(int_model, IN_FRAC, UnitMode::FloatExact, [1, 16, 16]),
            )
            .unwrap();
        ids.push(format!("fq-{scheme}"));
        ids.push(format!("int-{scheme}"));
    }

    let server = Arc::new(Server::start(
        registry,
        ServeConfig {
            max_batch: 4,
            queue_capacity: 2 * ids.len() * SAMPLES,
            batch_window: Duration::from_millis(1),
            request_timeout: None,
            workers: 2,
            shed_watermark: None,
        },
    ));
    let net = SocketServer::bind(Arc::clone(&server), "127.0.0.1:0").unwrap();

    // In-process answers, submitted concurrently with the socket traffic
    // below so mixed batches form across both entry points.
    let in_process = {
        let server = Arc::clone(&server);
        let ids = ids.clone();
        let samples = samples.clone();
        thread::spawn(move || {
            let mut got: BTreeMap<(String, usize), Vec<u32>> = BTreeMap::new();
            let pending: Vec<_> = ids
                .iter()
                .flat_map(|id| {
                    samples
                        .iter()
                        .enumerate()
                        .map(|(i, x)| (id.clone(), i, server.submit(id, x.clone()).unwrap()))
                        .collect::<Vec<_>>()
                })
                .collect();
            for (id, i, p) in pending {
                got.insert((id, i), bits(&p.wait().unwrap()));
            }
            got
        })
    };

    // Socket answers: one pipelined connection firing the whole grid
    // before reading any response.
    let mut client = Client::connect(net.local_addr()).unwrap();
    let mut sent: Vec<(u64, String, usize)> = Vec::new();
    for id in &ids {
        for (i, x) in samples.iter().enumerate() {
            let req_id = client.send(id, x).unwrap();
            sent.push((req_id, id.clone(), i));
        }
    }
    let mut remote: BTreeMap<(String, usize), Vec<u32>> = BTreeMap::new();
    for (req_id, id, i) in &sent {
        let response = client.recv().unwrap();
        assert_eq!(
            response.id, *req_id,
            "responses must arrive in submission order"
        );
        let out = response.result.expect("remote inference failed");
        assert_eq!(out.dims(), &[10, 8], "{id} sample {i} geometry");
        remote.insert((id.clone(), *i), bits(&out));
    }
    let in_process = in_process.join().expect("in-process client panicked");

    for (key, want) in &oracle {
        let (id, i) = key;
        assert_eq!(
            &in_process[key], want,
            "in-process {id} sample {i} diverged from the oracle"
        );
        assert_eq!(
            &remote[key], want,
            "socket {id} sample {i} diverged from the oracle"
        );
    }

    drop(client);
    let metrics = net.shutdown();
    let total = 2 * ids.len() * SAMPLES;
    assert_eq!(metrics.submitted, total as u64);
    assert_eq!(metrics.completed, total as u64);
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.malformed_frames, 0);
    assert_eq!(metrics.connections_accepted, 1);
    assert!(metrics.bytes_in > 0 && metrics.bytes_out > 0);
}

/// A short multi-connection soak: several socket clients interleave
/// call-and-wait traffic against one server; every response must match the
/// cold oracle bit for bit.
#[test]
fn concurrent_socket_clients_stay_bit_exact() {
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 2;
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
    let config = shallow_config(RoundingScheme::RoundToNearest);
    let qmodel = model.with_quantized_weights(&config);
    let samples: Vec<Tensor> = (0..SAMPLES).map(|i| sample(i as i64)).collect();
    let oracle: Vec<Vec<u32>> = samples
        .iter()
        .map(|x| {
            let single = Tensor::from_vec(x.data().to_vec(), [1, 1, 16, 16]).unwrap();
            let mut ctx = QuantCtx::from_config(&config);
            bits(&qmodel.infer(&single, &config, &mut ctx))
        })
        .collect();

    let mut registry = ModelRegistry::new();
    registry
        .register("m", FakeQuantEngine::new(&model, config, [1, 16, 16]))
        .unwrap();
    let server = Arc::new(Server::start(
        registry,
        ServeConfig {
            max_batch: 4,
            queue_capacity: 64,
            batch_window: Duration::from_millis(1),
            request_timeout: None,
            workers: 2,
            shed_watermark: None,
        },
    ));
    let net = SocketServer::bind(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let addr = net.local_addr();

    let oracle = Arc::new(oracle);
    let samples = Arc::new(samples);
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let oracle = Arc::clone(&oracle);
            let samples = Arc::clone(&samples);
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..ROUNDS {
                    for (i, x) in samples.iter().enumerate() {
                        let out = client.infer("m", x).unwrap();
                        assert_eq!(bits(&out), oracle[i], "client {c} round {round} sample {i}");
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("socket client panicked");
    }

    let metrics = net.shutdown();
    let total = (CLIENTS * ROUNDS * SAMPLES) as u64;
    assert_eq!(metrics.completed, total);
    assert_eq!(metrics.connections_accepted, CLIENTS as u64);
    assert_eq!(metrics.connections_active, 0);
    assert_eq!(metrics.malformed_frames, 0);
}
