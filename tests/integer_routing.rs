//! End-to-end validation that the framework's fake-quantized dynamic
//! routing is achievable with *pure integer* fixed-point hardware: a full
//! routing pass implemented with `Fx` MACs plus the integer squash/softmax
//! units (`fx_squash`, `fx_softmax`) must agree with the f32 reference on
//! the same quantized inputs.

use qcn_repro::fixed::{fx_softmax, fx_squash, Fx, QFormat};
use qcn_repro::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Integer dynamic routing (paper Fig. 6) over votes `û[i][j][d]` held as
/// `Fx` values: `iters` rounds of softmax → weighted sum → squash →
/// agreement, entirely in fixed point. Returns the output capsules
/// `v[j][d]`.
fn fx_dynamic_routing(votes: &[Vec<Vec<Fx>>], iters: usize, fmt: QFormat) -> Vec<Vec<Fx>> {
    let (ni, nj, dj) = (votes.len(), votes[0].len(), votes[0][0].len());
    let mut logits = vec![vec![Fx::zero(fmt); nj]; ni];
    let mut output = vec![vec![Fx::zero(fmt); dj]; nj];
    for iter in 0..iters {
        // c_i = softmax over j of b_i (Eq. 1), per input capsule.
        let coupling: Vec<Vec<Fx>> = logits.iter().map(|row| fx_softmax(row)).collect();
        // s_j = Σ_i c_ij · û_ij (step 4), accumulated in a wide format.
        let wide = QFormat::new(16, fmt.frac_bits());
        for j in 0..nj {
            for d in 0..dj {
                let mut acc = Fx::zero(wide);
                for (i, c_row) in coupling.iter().enumerate() {
                    acc = acc.mac(c_row[j].requantize(wide), votes[i][j][d].requantize(wide));
                }
                // Wordlength reduction before the squash unit (Fig. 9).
                output[j][d] = acc.requantize(fmt);
            }
        }
        // v_j = squash(s_j) (Eq. 2) on the integer unit.
        for v in output.iter_mut() {
            *v = fx_squash(v);
        }
        if iter + 1 < iters {
            // a_ij = v_j · û_ij, b += a (steps 6-7).
            for i in 0..ni {
                for j in 0..nj {
                    let wide_acc = {
                        let mut acc = Fx::zero(QFormat::new(16, fmt.frac_bits()));
                        for d in 0..dj {
                            acc = acc.mac(
                                output[j][d].requantize(QFormat::new(16, fmt.frac_bits())),
                                votes[i][j][d].requantize(QFormat::new(16, fmt.frac_bits())),
                            );
                        }
                        acc
                    };
                    logits[i][j] = (logits[i][j].requantize(QFormat::new(16, fmt.frac_bits()))
                        + wide_acc)
                        .requantize(fmt);
                }
            }
        }
    }
    output
}

/// f32 reference routing on the same (already-quantized) votes, with no
/// further rounding — the limit the integer path should approach as its
/// formats widen.
fn f32_dynamic_routing(votes: &[Vec<Vec<f32>>], iters: usize) -> Vec<Vec<f32>> {
    let (ni, nj, dj) = (votes.len(), votes[0].len(), votes[0][0].len());
    let mut logits = vec![vec![0.0f32; nj]; ni];
    let mut output = vec![vec![0.0f32; dj]; nj];
    for iter in 0..iters {
        let coupling: Vec<Vec<f32>> = logits
            .iter()
            .map(|row| {
                let t = Tensor::from_vec(row.clone(), [1, nj]).unwrap();
                t.softmax_axis(1).into_vec()
            })
            .collect();
        for j in 0..nj {
            for d in 0..dj {
                output[j][d] = (0..ni).map(|i| coupling[i][j] * votes[i][j][d]).sum();
            }
        }
        for v in output.iter_mut() {
            let t = Tensor::from_vec(v.clone(), [1, dj]).unwrap();
            *v = t.squash_axis(1).into_vec();
        }
        if iter + 1 < iters {
            for i in 0..ni {
                for j in 0..nj {
                    let a: f32 = (0..dj).map(|d| output[j][d] * votes[i][j][d]).sum();
                    logits[i][j] += a;
                }
            }
        }
    }
    output
}

#[test]
fn integer_routing_tracks_f32_reference() {
    let fmt = QFormat::new(2, 12);
    let mut rng = StdRng::seed_from_u64(5);
    let (ni, nj, dj) = (12, 4, 6);
    // Quantized votes shared by both paths.
    let votes_fx: Vec<Vec<Vec<Fx>>> = (0..ni)
        .map(|_| {
            (0..nj)
                .map(|_| {
                    (0..dj)
                        .map(|_| Fx::from_f32(rng.gen_range(-0.4..0.4), fmt))
                        .collect()
                })
                .collect()
        })
        .collect();
    let votes_f32: Vec<Vec<Vec<f32>>> = votes_fx
        .iter()
        .map(|a| {
            a.iter()
                .map(|b| b.iter().map(Fx::to_f32).collect())
                .collect()
        })
        .collect();
    for iters in [1usize, 3] {
        let integer = fx_dynamic_routing(&votes_fx, iters, fmt);
        let reference = f32_dynamic_routing(&votes_f32, iters);
        for j in 0..nj {
            for d in 0..dj {
                let got = integer[j][d].to_f32();
                let want = reference[j][d];
                assert!(
                    (got - want).abs() < 0.02,
                    "iters {iters}, v[{j}][{d}]: integer {got} vs f32 {want}"
                );
            }
        }
    }
}

#[test]
fn integer_routing_concentrates_on_agreeing_votes() {
    // Structural property of routing in pure integer arithmetic: when all
    // input capsules agree on output j*, three iterations route more mass
    // to j* than one iteration does.
    let fmt = QFormat::new(2, 12);
    let (ni, nj, dj) = (8, 3, 4);
    let votes: Vec<Vec<Vec<Fx>>> = (0..ni)
        .map(|_| {
            (0..nj)
                .map(|j| {
                    (0..dj)
                        .map(|d| {
                            // Every input votes strongly for j = 1.
                            let v = if j == 1 { 0.4 } else { 0.05 * (d as f32 - 1.5) };
                            Fx::from_f32(v, fmt)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let norm = |caps: &[Vec<Fx>], j: usize| -> f32 {
        caps[j]
            .iter()
            .map(|x| x.to_f32() * x.to_f32())
            .sum::<f32>()
            .sqrt()
    };
    let one = fx_dynamic_routing(&votes, 1, fmt);
    let three = fx_dynamic_routing(&votes, 3, fmt);
    assert!(
        norm(&three, 1) > norm(&one, 1),
        "routing should strengthen the agreed capsule: {} vs {}",
        norm(&three, 1),
        norm(&one, 1)
    );
}
