//! Property tests of the framework's search algorithms driven by a
//! *synthetic accuracy oracle* whose accuracy surface is known in closed
//! form — so optimality and termination properties can be checked exactly,
//! with no model training.
//!
//! The oracle is monotone (more bits never hurt), matching the assumption
//! the paper's binary search and greedy descents rely on.

use proptest::prelude::*;
use qcapsnets::algorithms::{binary_search_uniform, dr_quant, layerwise, ParamDomain};
use qcapsnets::ConfigScorer;
use qcn_repro::capsnet::{GroupInfo, LayerQuant, ModelQuant};
use qcn_repro::fixed::RoundingScheme;

/// A monotone synthetic accuracy surface: each layer contributes an
/// exponential penalty `coeff · 2^(−bits)` for weights, activations and
/// routing data; `None` counts as 32 bits (negligible).
#[derive(Debug, Clone)]
struct Oracle {
    groups: Vec<GroupInfo>,
    weight_coeff: Vec<f32>,
    act_coeff: Vec<f32>,
    dr_coeff: Vec<f32>,
    evaluations: usize,
}

impl Oracle {
    fn new(
        weight_coeff: Vec<f32>,
        act_coeff: Vec<f32>,
        dr_coeff: Vec<f32>,
        routing: Vec<bool>,
    ) -> Self {
        let groups = routing
            .iter()
            .enumerate()
            .map(|(i, &has_routing)| GroupInfo {
                name: format!("L{i}"),
                weight_count: 100,
                activation_count: 100,
                has_routing,
            })
            .collect();
        Oracle {
            groups,
            weight_coeff,
            act_coeff,
            dr_coeff,
            evaluations: 0,
        }
    }

    fn accuracy_of(&self, config: &ModelQuant) -> f32 {
        let bits = |b: Option<u8>| b.unwrap_or(32) as f32;
        let mut acc = 1.0f32;
        for (l, lq) in config.layers.iter().enumerate() {
            acc -= self.weight_coeff[l] * 0.5f32.powf(bits(lq.weight_frac));
            acc -= self.act_coeff[l] * 0.5f32.powf(bits(lq.act_frac));
            if self.groups[l].has_routing {
                acc -= self.dr_coeff[l] * 0.5f32.powf(bits(lq.effective_dr_frac()));
            }
        }
        acc.max(0.0)
    }
}

impl ConfigScorer for Oracle {
    fn score(&mut self, config: &ModelQuant) -> f32 {
        self.evaluations += 1;
        self.accuracy_of(config)
    }

    fn groups(&self) -> Vec<GroupInfo> {
        self.groups.clone()
    }
}

fn coeff_strategy(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.01f32..0.8, n)
}

const MAX_FRAC: u8 = 16;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary search returns the *minimal* passing uniform width.
    #[test]
    fn binary_search_is_minimal(
        w in coeff_strategy(3),
        a in coeff_strategy(3),
        target in 0.3f32..0.95,
    ) {
        let mut oracle = Oracle::new(w, a, vec![0.0; 3], vec![false, false, true]);
        let base = ModelQuant {
            layers: vec![LayerQuant::full_precision(); 3],
            scheme: RoundingScheme::Truncation,
            seed: 0,
        };
        let (config, frac) =
            binary_search_uniform(&mut oracle, &base, ParamDomain::Both, MAX_FRAC, target);
        let acc = oracle.accuracy_of(&config);
        if acc >= target {
            // Minimality: one bit less must fail (unless already 0).
            if frac > 0 {
                let mut narrower = base.clone();
                for l in &mut narrower.layers {
                    l.weight_frac = Some(frac - 1);
                    l.act_frac = Some(frac - 1);
                }
                prop_assert!(oracle.accuracy_of(&narrower) < target);
            }
        } else {
            // Unreachable target: the search must have returned max width.
            prop_assert_eq!(frac, MAX_FRAC);
        }
    }

    /// Binary search uses O(log max_frac) evaluations.
    #[test]
    fn binary_search_is_logarithmic(
        w in coeff_strategy(4),
        a in coeff_strategy(4),
        target in 0.3f32..0.95,
    ) {
        let mut oracle = Oracle::new(w, a, vec![0.0; 4], vec![false; 4]);
        let base = ModelQuant {
            layers: vec![LayerQuant::full_precision(); 4],
            scheme: RoundingScheme::Truncation,
            seed: 0,
        };
        binary_search_uniform(&mut oracle, &base, ParamDomain::Both, MAX_FRAC, target);
        prop_assert!(oracle.evaluations <= 6, "{} evals", oracle.evaluations);
    }

    /// Layer-wise descent keeps accuracy at or above the floor, never
    /// touches layer 0, produces a non-increasing suffix, and is locally
    /// minimal: any further lock-step suffix decrement fails.
    #[test]
    fn layerwise_postconditions(
        w in coeff_strategy(4),
        a in coeff_strategy(4),
        start_frac in 4u8..12,
        margin in 0.001f32..0.2,
    ) {
        let n = 4;
        let mut oracle = Oracle::new(w, a, vec![0.0; n], vec![false; n]);
        let start = ModelQuant {
            layers: vec![LayerQuant::uniform(start_frac); n],
            scheme: RoundingScheme::Truncation,
            seed: 0,
        };
        let start_acc = oracle.accuracy_of(&start);
        let acc_min = (start_acc - margin).max(0.0);
        let result = layerwise(&mut oracle, &start, ParamDomain::Activations, acc_min);
        // Accuracy floor respected.
        prop_assert!(oracle.accuracy_of(&result) >= acc_min);
        // First layer untouched.
        prop_assert_eq!(result.layers[0].act_frac, Some(start_frac));
        // Suffix monotone non-increasing.
        let widths: Vec<u8> = result.layers.iter().map(|l| l.act_frac.unwrap()).collect();
        for pair in widths[1..].windows(2) {
            prop_assert!(pair[0] >= pair[1], "{widths:?}");
        }
        // Local minimality for every suffix.
        for s in 1..n {
            if widths[s..].iter().all(|&b| b > 0) {
                let mut candidate = result.clone();
                for (layer, &w) in candidate.layers[s..n].iter_mut().zip(&widths[s..n]) {
                    layer.act_frac = Some(w - 1);
                }
                prop_assert!(
                    oracle.accuracy_of(&candidate) < acc_min,
                    "suffix {s} could descend further: {widths:?}"
                );
            }
        }
    }

    /// DR quantization touches exactly the routing groups, respects the
    /// accuracy floor, and each chosen width is locally minimal.
    #[test]
    fn dr_quant_postconditions(
        w in coeff_strategy(3),
        a in coeff_strategy(3),
        dr in coeff_strategy(3),
        start_frac in 4u8..12,
        margin in 0.001f32..0.2,
    ) {
        let routing = vec![false, true, true];
        let mut oracle = Oracle::new(w, a, dr, routing.clone());
        let start = ModelQuant {
            layers: vec![LayerQuant::uniform(start_frac); 3],
            scheme: RoundingScheme::Truncation,
            seed: 0,
        };
        let start_acc = oracle.accuracy_of(&start);
        let acc_min = (start_acc - margin).max(0.0);
        let result = dr_quant(&mut oracle, &start, acc_min);
        prop_assert!(oracle.accuracy_of(&result) >= acc_min);
        // Non-routing groups untouched.
        prop_assert_eq!(result.layers[0].dr_frac, None);
        for (l, &is_routing) in routing.iter().enumerate() {
            if is_routing {
                let chosen = result.layers[l].dr_frac.expect("routing group gets DR width");
                prop_assert!(chosen <= start_frac);
                // Local minimality.
                if chosen > 0 {
                    let mut candidate = result.clone();
                    candidate.layers[l].dr_frac = Some(chosen - 1);
                    prop_assert!(oracle.accuracy_of(&candidate) < acc_min);
                }
            }
        }
    }

    /// The full pipeline order (binary search → layerwise → dr_quant) under
    /// a monotone oracle never ends below the final accuracy floor.
    #[test]
    fn composed_pipeline_respects_floor(
        w in coeff_strategy(3),
        a in coeff_strategy(3),
        dr in coeff_strategy(3),
        target in 0.5f32..0.9,
    ) {
        let mut oracle = Oracle::new(w, a, dr, vec![false, false, true]);
        let base = ModelQuant {
            layers: vec![LayerQuant::full_precision(); 3],
            scheme: RoundingScheme::Truncation,
            seed: 0,
        };
        let (uniform, _) =
            binary_search_uniform(&mut oracle, &base, ParamDomain::Both, MAX_FRAC, target);
        if oracle.accuracy_of(&uniform) >= target {
            let lw = layerwise(&mut oracle, &uniform, ParamDomain::Activations, target);
            let final_config = dr_quant(&mut oracle, &lw, target);
            prop_assert!(oracle.accuracy_of(&final_config) >= target);
        }
    }
}
