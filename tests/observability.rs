//! End-to-end smoke of the telemetry subsystem: a socket server under
//! real load must expose engine-stage timings, queue/batch metrics and
//! wire counters through both exposition paths — the Prometheus HTTP
//! endpoint and the `Stats` wire frame — and both must agree on the
//! metric families they carry.

use qcn_repro::capsnet::{ModelQuant, ShallowCaps, ShallowCapsConfig};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::export::pack_model;
use qcn_repro::intinfer::{IntModel, UnitMode};
use qcn_repro::serve::{
    Client, FakeQuantEngine, IntEngine, MetricsHttp, ModelRegistry, ServeConfig, Server,
    SocketServer,
};
use qcn_repro::tensor::Tensor;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const IN_FRAC: u8 = 5;

/// Deterministic on-grid sample `[1, 16, 16]`.
fn sample(seed: i64) -> Tensor {
    Tensor::from_fn([1, 16, 16], |idx| {
        let i = (idx[1] * 16 + idx[2]) as i64;
        ((i * 37 + seed * 11).rem_euclid(32)) as f32 / 32.0
    })
}

/// One GET against `path`, returning (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

#[test]
fn metrics_flow_through_http_endpoint_and_stats_frame() {
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
    let config = ModelQuant::uniform(3, 5, RoundingScheme::RoundToNearest);
    let packed = pack_model(&model, &config);
    let int_model = IntModel::load(&model.descriptor(), &packed).unwrap();

    let mut registry = ModelRegistry::new();
    registry
        .register(
            "fq",
            FakeQuantEngine::new(&model, config.clone(), [1, 16, 16]),
        )
        .unwrap();
    registry
        .register(
            "int",
            IntEngine::new(int_model, IN_FRAC, UnitMode::FloatExact, [1, 16, 16]),
        )
        .unwrap();
    let server = Arc::new(Server::start(registry, ServeConfig::default()));
    let net = SocketServer::bind(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let exporter = MetricsHttp::bind(Arc::clone(&server), "127.0.0.1:0").unwrap();

    // Drive load through the socket front-end on both engines.
    let mut client = Client::connect(net.local_addr()).unwrap();
    for i in 0..8 {
        for model_id in ["fq", "int"] {
            client.infer(model_id, &sample(i)).unwrap();
        }
    }

    // Path 1: the Prometheus HTTP endpoint.
    let (status, scraped) = http_get(exporter.local_addr(), "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    // Server-registry series: request accounting, queue/batch, wire bytes.
    for needle in [
        "# TYPE qcn_serve_requests_submitted_total counter",
        "qcn_serve_requests_submitted_total 16",
        "qcn_serve_requests_completed_total 16",
        "# TYPE qcn_serve_queue_depth gauge",
        "qcn_serve_queue_depth_max",
        "# TYPE qcn_serve_batch_size histogram",
        "qcn_serve_batch_size_sum 16",
        "# TYPE qcn_serve_request_latency_us histogram",
        "qcn_serve_request_latency_us_bucket",
        "qcn_serve_request_latency_window_us{quantile=\"0.5\"}",
        "qcn_serve_wire_bytes_total{direction=\"in\"}",
        "qcn_serve_wire_bytes_total{direction=\"out\"}",
        "qcn_serve_connections_accepted_total 1",
        "# TYPE qcn_serve_uptime_seconds gauge",
    ] {
        assert!(
            scraped.contains(needle),
            "missing {needle:?} in:\n{scraped}"
        );
    }
    // Global-registry series: per-stage engine timings from both engines
    // (when timing is enabled; under QCN_TELEMETRY=0 the engines record
    // nothing and the endpoint must still serve what it has).
    if qcn_repro::telemetry::timing_enabled() {
        for needle in [
            "# TYPE qcn_stage_duration_us histogram",
            "engine=\"fake_quant\"",
            "engine=\"integer\"",
            "stage=\"L1\"",
        ] {
            assert!(
                scraped.contains(needle),
                "missing {needle:?} in:\n{scraped}"
            );
        }
        assert!(
            scraped.contains("qcn_tensor_pool_dispatch_total"),
            "missing pool dispatch counters in:\n{scraped}"
        );
    }

    // Unknown paths 404.
    let (status, _) = http_get(exporter.local_addr(), "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // Path 2: the Stats wire frame returns the same registry view (modulo
    // the traffic the scrapes themselves added).
    let stats = client.stats().unwrap();
    for needle in [
        "qcn_serve_requests_submitted_total 16",
        "qcn_serve_batch_size_sum 16",
        "qcn_serve_request_latency_window_us{quantile=\"0.99\"}",
    ] {
        assert!(stats.contains(needle), "missing {needle:?} in:\n{stats}");
    }
    // Same families in both expositions.
    let families = |text: &str| -> Vec<String> {
        text.lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(families(&scraped), families(&stats));

    // The stats pull flowed through the ordered writer: a subsequent
    // inference on the same connection still answers correctly.
    let out = client.infer("fq", &sample(99)).unwrap();
    assert_eq!(out.dims(), &[10, 8]);

    drop(client);
    exporter.shutdown();
    let final_metrics = net.shutdown();
    assert_eq!(final_metrics.completed, 17);
    assert_eq!(final_metrics.submitted, 17);
}
