//! Chaos acceptance soak: a seeded fault storm across every injection
//! point in the serving stack, with the contract that **every non-shed
//! request resolves** — to a response bit-identical to the cold oracle,
//! or to a typed error — never a hang, never silent corruption.
//!
//! The phases share one process (the chaos plan is process-global), so
//! they run inside a single `#[test]`:
//!
//! 1. Reproducibility: the same seed previews the identical fault
//!    schedule; a different seed diverges.
//! 2. Corrupt model loading: a bit-flipped blob is caught by the CRC-32
//!    check as a typed `ChecksumMismatch`, and loading recovers the
//!    moment chaos is disarmed.
//! 3. Worker panic: an injected panic loses only its batch (typed
//!    `WorkerLost`), the worker respawns, and the server keeps serving.
//! 4. The storm: three replicas behind a router, wire resets, torn
//!    frames, dispatch delays, worker panics, upstream channel deaths
//!    and probe flaps all firing at once under client load.
//!
//! Seed override: `QCN_CHAOS_SEED=<n>` (CI sweeps a fixed matrix).

use qcn_repro::capsnet::{CapsNet, ModelQuant, QuantCtx, ShallowCaps, ShallowCapsConfig};
use qcn_repro::chaos::{self, FaultPlan, FaultSpec};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::export::pack_model;
use qcn_repro::intinfer::{IntModel, LoadError, UnitMode};
use qcn_repro::router::{Router, RouterConfig};
use qcn_repro::serve::{
    Client, ClientError, FakeQuantEngine, IntEngine, ModelRegistry, ServeConfig, Server,
    SocketServer,
};
use qcn_repro::tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const IN_FRAC: u8 = 5;
const SAMPLES: usize = 3;
const THREADS: usize = 3;
const REQUESTS_PER_THREAD: usize = 80;
const WATCHDOG: Duration = Duration::from_secs(120);

fn seed_from_env() -> u64 {
    std::env::var("QCN_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE)
}

fn shallow_config() -> ModelQuant {
    let mut config = ModelQuant::uniform(3, 5, RoundingScheme::RoundToNearest);
    for lq in &mut config.layers {
        lq.dr_frac = Some(4);
    }
    config.seed = 0xBEEF;
    config
}

/// Deterministic on-grid sample `[1, 16, 16]` at Q1.5.
fn sample(seed: i64) -> Tensor {
    Tensor::from_fn([1, 16, 16], |idx| {
        let i = (idx[1] * 16 + idx[2]) as i64;
        ((i * 37 + seed * 11).rem_euclid(32)) as f32 / 32.0
    })
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// A replica serving the fake-quant and integer engines.
fn replica(model: &ShallowCaps) -> SocketServer {
    let config = shallow_config();
    let packed = pack_model(model, &config);
    let int_model = IntModel::load(&model.descriptor(), &packed).unwrap();
    let mut registry = ModelRegistry::new();
    registry
        .register("fq", FakeQuantEngine::new(model, config, [1, 16, 16]))
        .unwrap();
    registry
        .register(
            "int",
            IntEngine::new(int_model, IN_FRAC, UnitMode::FloatExact, [1, 16, 16]),
        )
        .unwrap();
    let server = Arc::new(Server::start(
        registry,
        ServeConfig {
            max_batch: 4,
            queue_capacity: 64,
            batch_window: Duration::from_millis(1),
            request_timeout: None,
            workers: 2,
            shed_watermark: Some(32),
        },
    ));
    SocketServer::bind(server, "127.0.0.1:0").unwrap()
}

/// The storm schedule: every injection point in the stack armed at once.
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with("serve.net.write", FaultSpec::reset(0.02))
        .with("serve.net.write", FaultSpec::truncate(0.02, 9))
        .with("serve.net.read", FaultSpec::reset(0.01))
        .with(
            "serve.dispatch",
            FaultSpec::delay(0.05, Duration::from_micros(500)),
        )
        .with("serve.worker", FaultSpec::panic_fault(0.02))
        .with("router.upstream.write", FaultSpec::reset(0.02))
        .with("router.upstream.read", FaultSpec::reset(0.02))
        .with("router.probe", FaultSpec::reset(0.10))
        .with("client.send", FaultSpec::reset(0.01))
        .with("client.recv", FaultSpec::reset(0.01))
}

fn reconnect(addr: std::net::SocketAddr, deadline: Instant) -> Client {
    loop {
        assert!(
            Instant::now() < deadline,
            "watchdog: could not reconnect to the router"
        );
        if let Ok(mut c) = Client::connect_timeout(addr, Duration::from_millis(500)) {
            c.set_io_timeout(Some(Duration::from_secs(8))).unwrap();
            return c;
        }
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn seeded_fault_storm_never_hangs_or_corrupts() {
    let seed = seed_from_env();
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
    let config = shallow_config();

    // ---- Phase 1: the schedule is a pure function of the seed. --------
    let p1 = storm_plan(seed).preview("serve.net.write", 512);
    assert_eq!(
        p1,
        storm_plan(seed).preview("serve.net.write", 512),
        "same seed must replay the identical fault schedule"
    );
    assert_ne!(
        p1,
        storm_plan(seed ^ 1).preview("serve.net.write", 512),
        "different seeds must diverge"
    );

    // ---- Phase 2: corrupted model blobs are a typed load error. -------
    let packed = pack_model(&model, &config);
    chaos::install(FaultPlan::new(seed).with("intinfer.load", FaultSpec::flip_bit(1.0)));
    match IntModel::load(&model.descriptor(), &packed) {
        Err(LoadError::ChecksumMismatch { .. }) => {}
        other => panic!("bit-flipped blob must be a ChecksumMismatch, got {other:?}"),
    }
    chaos::clear();
    IntModel::load(&model.descriptor(), &packed)
        .expect("with chaos disarmed the same blob loads clean");

    // ---- Phase 3: a worker panic loses only its batch. ----------------
    {
        let mut registry = ModelRegistry::new();
        registry
            .register(
                "fq",
                FakeQuantEngine::new(&model, shallow_config(), [1, 16, 16]),
            )
            .unwrap();
        let server = Server::start(
            registry,
            ServeConfig {
                max_batch: 4,
                queue_capacity: 16,
                batch_window: Duration::from_millis(1),
                request_timeout: None,
                workers: 1,
                shed_watermark: None,
            },
        );
        chaos::install(FaultPlan::new(seed).with("serve.worker", FaultSpec::panic_fault(1.0)));
        match server.submit("fq", sample(0)).unwrap().wait() {
            Err(qcn_repro::serve::ServeError::WorkerLost) => {}
            other => panic!("a panicked worker's batch must be WorkerLost, got {other:?}"),
        }
        chaos::clear();
        server
            .submit("fq", sample(0))
            .unwrap()
            .wait()
            .expect("the respawned worker must serve again");
        let m = server.shutdown();
        assert!(
            m.worker_respawns >= 1,
            "the panic must be visible as a respawn: {m:?}"
        );
    }

    // ---- Phase 4: the storm. ------------------------------------------
    let samples: Vec<Tensor> = (0..SAMPLES).map(|i| sample(i as i64)).collect();
    let mut oracle: BTreeMap<(&'static str, usize), Vec<u32>> = BTreeMap::new();
    {
        let packed = pack_model(&model, &config);
        let int_model = IntModel::load(&model.descriptor(), &packed).unwrap();
        let qmodel = model.with_quantized_weights(&config);
        for (i, x) in samples.iter().enumerate() {
            let single = Tensor::from_vec(x.data().to_vec(), [1, 1, 16, 16]).unwrap();
            let mut ctx = QuantCtx::from_config(&config);
            oracle.insert(("fq", i), bits(&qmodel.infer(&single, &config, &mut ctx)));
            oracle.insert(
                ("int", i),
                bits(&int_model.infer(&single, IN_FRAC, UnitMode::FloatExact)),
            );
        }
    }
    let oracle = Arc::new(oracle);

    let replicas: Vec<SocketServer> = (0..3).map(|_| replica(&model)).collect();
    let mut cfg = RouterConfig::new(replicas.iter().map(|r| r.local_addr()));
    cfg.connect_timeout = Duration::from_millis(500);
    cfg.retry_backoff = Duration::from_millis(2);
    cfg.max_backoff = Duration::from_millis(20);
    cfg.health_interval = Duration::from_millis(100);
    cfg.eject_after = 2;
    cfg.eject_cooldown = Duration::from_millis(200);
    cfg.io_timeout = Duration::from_secs(1);
    let router = Router::bind(cfg, "127.0.0.1:0").unwrap();
    let router_addr = router.local_addr();

    chaos::install(storm_plan(seed));
    let deadline = Instant::now() + WATCHDOG;
    let loaders: Vec<thread::JoinHandle<(u64, u64)>> = (0..THREADS)
        .map(|t| {
            let oracle = Arc::clone(&oracle);
            let samples = samples.clone();
            thread::spawn(move || {
                let mut client = reconnect(router_addr, deadline);
                let (mut oks, mut typed) = (0u64, 0u64);
                for k in 0..REQUESTS_PER_THREAD {
                    assert!(
                        Instant::now() < deadline,
                        "watchdog: storm thread {t} stalled at request {k}"
                    );
                    let id = if (t + k) % 2 == 0 { "fq" } else { "int" };
                    let i = (t + k) % SAMPLES;
                    match client.infer(id, &samples[i]) {
                        Ok(out) => {
                            assert_eq!(
                                bits(&out),
                                oracle[&(id, i)],
                                "thread {t} request {k} ({id}, sample {i}) is not bit-identical"
                            );
                            oks += 1;
                        }
                        Err(ClientError::Protocol(msg)) => {
                            panic!(
                                "thread {t} request {k}: wire corruption reached the client: {msg}"
                            )
                        }
                        Err(ClientError::Io(_) | ClientError::TimedOut) => {
                            // The connection died (injected reset, torn
                            // frame, or our own injected client fault):
                            // a typed, non-corrupt resolution. Reconnect.
                            typed += 1;
                            client = reconnect(router_addr, deadline);
                        }
                        Err(ClientError::Rejected(_) | ClientError::Failed(_)) => {
                            // Typed backpressure or failure — the
                            // connection itself is still good.
                            typed += 1;
                        }
                    }
                }
                (oks, typed)
            })
        })
        .collect();

    let mut oks = 0u64;
    let mut typed = 0u64;
    for handle in loaders {
        let (o, t) = handle
            .join()
            .expect("a storm thread saw corruption or hung");
        oks += o;
        typed += t;
    }
    chaos::clear();
    assert_eq!(
        oks + typed,
        (THREADS * REQUESTS_PER_THREAD) as u64,
        "every request must resolve"
    );
    assert!(
        oks >= (THREADS * REQUESTS_PER_THREAD) as u64 / 2,
        "the storm should mostly succeed ({oks} ok, {typed} typed errors)"
    );

    // With chaos disarmed the stack serves clean, bit-identical traffic
    // again — the storm left no lasting damage.
    let mut client = reconnect(router_addr, Instant::now() + Duration::from_secs(10));
    for (i, x) in samples.iter().enumerate() {
        let out = client.infer("int", x).expect("post-storm request failed");
        assert_eq!(bits(&out), oracle[&("int", i)], "post-storm divergence");
    }
    drop(client);

    router.shutdown();
    for r in replicas {
        r.shutdown();
    }
}
