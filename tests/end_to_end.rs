//! Cross-crate integration tests: train a small CapsNet, run the full
//! Q-CapsNets framework, and check the paper's structural invariants.

use qcn_repro::capsnet::{
    accuracy, train, CapsNet, ModelQuant, ShallowCaps, ShallowCapsConfig, TrainConfig,
};
use qcn_repro::datasets::augment::AugmentPolicy;
use qcn_repro::datasets::{Dataset, SynthKind};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::{
    memory, run, run_library, FrameworkConfig, Outcome, ResultKind, Selection,
};
use std::sync::OnceLock;

/// One lightly trained model shared by every test in this binary.
fn trained() -> (&'static ShallowCaps, &'static Dataset) {
    static CELL: OnceLock<(ShallowCaps, Dataset)> = OnceLock::new();
    let (m, d) = CELL.get_or_init(|| {
        let config = ShallowCapsConfig {
            conv_channels: 12,
            primary_types: 4,
            digit_dim: 6,
            ..ShallowCapsConfig::small(1)
        };
        let mut model = ShallowCaps::new(config, 9);
        let (train_set, test_set) = SynthKind::Mnist.train_test(400, 120, 9);
        let report = train(
            &mut model,
            &train_set,
            &test_set,
            &TrainConfig {
                epochs: 4,
                batch_size: 25,
                lr: 0.003,
                augment: AugmentPolicy::none(),
                ..TrainConfig::default()
            },
        );
        assert!(
            report.final_accuracy > 0.5,
            "training failed to beat 50%: {:.1}%",
            report.final_accuracy * 100.0
        );
        (model, test_set)
    });
    (m, d)
}

#[test]
fn path_a_satisfies_both_constraints() {
    let (model, test) = trained();
    let groups = model.groups();
    let fp32_bits: u64 = groups.iter().map(|g| g.weight_count as u64 * 32).sum();
    let budget = fp32_bits / 4;
    let report = run(
        model,
        test,
        &FrameworkConfig {
            acc_tol: 0.05,
            memory_budget_bits: budget,
            ..FrameworkConfig::default()
        },
    );
    let Outcome::Satisfied(result) = &report.outcome else {
        panic!("expected Path A, got {:?}", report.outcome);
    };
    // Memory constraint.
    assert!(result.weight_mem_bits <= budget);
    assert_eq!(
        result.weight_mem_bits,
        memory::weight_memory_bits(&groups, &result.config)
    );
    // Accuracy constraint (within the framework's one-sample slack).
    let slack = 1.0 / test.len() as f32;
    assert!(
        result.accuracy >= report.acc_target - slack,
        "{} < {}",
        result.accuracy,
        report.acc_target
    );
    // Step 4A must have specialised the routing layer.
    assert!(result.config.layers[2].dr_frac.is_some());
}

#[test]
fn dr_bits_do_not_exceed_activation_bits() {
    // Paper §IV-D: routing data can always be quantized at least as
    // aggressively as the activations it derives from.
    let (model, test) = trained();
    let report = run(
        model,
        test,
        &FrameworkConfig {
            acc_tol: 0.05,
            ..FrameworkConfig::default()
        },
    );
    for result in report.outcome.results() {
        let lq = &result.config.layers[2];
        if let (Some(dr), Some(act)) = (lq.dr_frac, lq.act_frac) {
            assert!(dr <= act, "DR {dr} > act {act}");
        }
    }
}

#[test]
fn impossible_budget_returns_fallback_pair() {
    let (model, test) = trained();
    let total_w: u64 = model.groups().iter().map(|g| g.weight_count as u64).sum();
    let report = run(
        model,
        test,
        &FrameworkConfig {
            acc_tol: 0.001,
            memory_budget_bits: total_w, // 1 bit per weight
            ..FrameworkConfig::default()
        },
    );
    let Outcome::Fallback { memory, accuracy } = &report.outcome else {
        panic!("1 bit/weight cannot hold the accuracy target");
    };
    assert_eq!(memory.kind, ResultKind::Memory);
    assert_eq!(accuracy.kind, ResultKind::Accuracy);
    // model_memory respects the budget even when accuracy collapses.
    assert!(memory.weight_mem_bits <= total_w);
    // model_accuracy keeps (near-)target accuracy at whatever memory.
    let slack = 1.0 / test.len() as f32;
    assert!(accuracy.accuracy >= report.acc_target - slack);
    assert!(accuracy.accuracy >= memory.accuracy);
}

#[test]
fn quantized_model_evaluates_identically_to_reported_accuracy() {
    // The accuracy in the report must be reproducible from the config.
    let (model, test) = trained();
    let report = run(
        model,
        test,
        &FrameworkConfig {
            acc_tol: 0.05,
            ..FrameworkConfig::default()
        },
    );
    for result in report.outcome.results() {
        let qmodel = model.with_quantized_weights(&result.config);
        let acc = accuracy(&qmodel, test, &result.config, 50);
        assert!(
            (acc - result.accuracy).abs() < 1e-6,
            "reported {} vs reproduced {acc}",
            result.accuracy
        );
    }
}

#[test]
fn library_selection_returns_a_library_scheme() {
    let (model, test) = trained();
    let fp32_bits: u64 = model
        .groups()
        .iter()
        .map(|g| g.weight_count as u64 * 32)
        .sum();
    let lib = run_library(
        model,
        test,
        &FrameworkConfig {
            acc_tol: 0.05,
            memory_budget_bits: fp32_bits / 4,
            ..FrameworkConfig::default()
        },
        &RoundingScheme::ALL,
    );
    assert_eq!(lib.runs.len(), 3);
    match &lib.selection {
        Selection::Satisfied { scheme, result } => {
            assert!(RoundingScheme::ALL.contains(scheme));
            assert!(result.weight_mem_bits <= fp32_bits / 4);
            // The winner must have the lowest weight memory among all
            // satisfied runs.
            for (_, run) in &lib.runs {
                if let Outcome::Satisfied(other) = &run.outcome {
                    assert!(result.weight_mem_bits <= other.weight_mem_bits);
                }
            }
        }
        Selection::Fallback { memory, accuracy } => {
            assert!(RoundingScheme::ALL.contains(&memory.0));
            assert!(RoundingScheme::ALL.contains(&accuracy.0));
        }
    }
}

#[test]
fn memory_accounting_matches_hand_computation() {
    let (model, _) = trained();
    let groups = model.groups();
    let mut config = ModelQuant::uniform(3, 7, RoundingScheme::Truncation);
    config.layers[2].weight_frac = Some(3);
    let expected: u64 = groups
        .iter()
        .zip(&config.layers)
        .map(|(g, l)| g.weight_count as u64 * (1 + l.weight_frac.unwrap() as u64))
        .sum();
    assert_eq!(memory::weight_memory_bits(&groups, &config), expected);
}
