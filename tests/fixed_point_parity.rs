//! Cross-validation of the f32 fake-quantization path against true integer
//! fixed-point arithmetic ([`qcn_repro::fixed::Fx`]): the framework's
//! simulated quantization must be bit-exact with what a hardware datapath
//! would store.

use qcn_repro::fixed::{Fx, QFormat, Quantizer, RoundingScheme};
use qcn_repro::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn fake_quantized_values_are_exactly_representable_as_fx() {
    let mut rng = StdRng::seed_from_u64(0);
    for frac in [2u8, 4, 7, 11] {
        let format = QFormat::with_frac(frac);
        for scheme in RoundingScheme::ALL {
            let t = Tensor::rand_uniform([256], -2.0, 2.0, &mut rng);
            let q = Quantizer::new(format, scheme).quantize(&t, &mut rng);
            for &v in q.data() {
                // Converting a fake-quantized value to Fx and back must be
                // lossless: the value sits on the integer grid.
                let fx = Fx::from_f32(v, format);
                assert_eq!(fx.to_f32(), v, "{scheme} frac {frac}: {v}");
            }
        }
    }
}

#[test]
fn quantized_dot_product_matches_integer_mac_chain() {
    // A capsule vote is a dot product; verify the f32 path (quantized
    // inputs, f32 multiply-accumulate, truncating re-quantization) matches
    // the Fx MAC chain when the accumulator is wide enough.
    let mut rng = StdRng::seed_from_u64(1);
    let io_format = QFormat::with_frac(6);
    // Wide accumulator (like a real MAC unit's internal width).
    let acc_format = QFormat::new(8, 12);
    for _ in 0..50 {
        let xs: Vec<f32> = (0..16).map(|_| rng.gen_range(-0.9..0.9)).collect();
        let ws: Vec<f32> = (0..16).map(|_| rng.gen_range(-0.9..0.9)).collect();
        // Quantize inputs/weights once (truncation).
        let xq: Vec<f32> = xs
            .iter()
            .map(|&x| Fx::from_f32(x, io_format).to_f32())
            .collect();
        let wq: Vec<f32> = ws
            .iter()
            .map(|&w| Fx::from_f32(w, io_format).to_f32())
            .collect();
        // f32 path.
        let f32_result: f32 = xq.iter().zip(&wq).map(|(x, w)| x * w).sum();
        // Integer path.
        let mut acc = Fx::zero(acc_format);
        for (&x, &w) in xq.iter().zip(&wq) {
            acc = acc.mac(Fx::from_f32(x, acc_format), Fx::from_f32(w, acc_format));
        }
        // Products of two 6-fractional-bit values need 12 fractional bits:
        // the wide accumulator holds them exactly, so both paths agree to
        // the accumulator precision.
        assert!(
            (acc.to_f32() - f32_result).abs() <= acc_format.precision() * 16.0,
            "{} vs {f32_result}",
            acc.to_f32()
        );
    }
}

#[test]
fn requantization_matches_fake_round_trip() {
    // Narrowing an Fx value (hardware wordlength reduction before a squash
    // unit) must equal fake-quantizing the same value with truncation.
    let mut rng = StdRng::seed_from_u64(2);
    let wide = QFormat::new(2, 12);
    let narrow = QFormat::with_frac(4);
    let trn = RoundingScheme::Truncation;
    for _ in 0..500 {
        let x = rng.gen_range(-1.0..1.0f32);
        let fx_wide = Fx::from_f32(x, wide);
        let hardware = fx_wide.requantize(narrow).to_f32();
        let fake = trn.round(fx_wide.to_f32(), narrow, &mut rng);
        assert_eq!(hardware, fake, "x = {x}");
    }
}

#[test]
fn saturating_behaviour_matches() {
    let format = QFormat::with_frac(5);
    let mut rng = StdRng::seed_from_u64(3);
    for &x in &[1.5f32, -3.0, 0.99, -1.0, 7.25] {
        let fake = RoundingScheme::Truncation.round(x, format, &mut rng);
        let fx = Fx::from_f32(x, format).to_f32();
        assert_eq!(fake, fx, "x = {x}");
    }
}
