//! End-to-end determinism of the parallel compute backend: a full
//! ShallowCaps forward pass (conv stem → PrimaryCaps → dynamic routing)
//! must be bit-identical regardless of how many threads the tensor kernels
//! use — the contract that keeps the Q-CapsNets accuracy search
//! reproducible across machines and `QCN_NUM_THREADS` settings.

use qcn_repro::capsnet::{
    CapsNet, LayerQuant, ModelQuant, QuantCtx, ShallowCaps, ShallowCapsConfig,
};
use qcn_repro::datasets::SynthKind;
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::tensor::parallel::with_threads;

fn model_and_batch() -> (ShallowCaps, qcn_repro::tensor::Tensor) {
    let config = ShallowCapsConfig {
        conv_channels: 8,
        primary_types: 3,
        digit_dim: 4,
        ..ShallowCapsConfig::small(1)
    };
    let model = ShallowCaps::new(config, 5);
    let ds = SynthKind::Mnist.generate(6, 5);
    let (images, _) = ds.batch(&[0, 1, 2, 3, 4, 5]);
    (model, images)
}

/// The acceptance check: the same forward pass under `QCN_NUM_THREADS=1`
/// and `QCN_NUM_THREADS=8` produces bitwise-equal output capsules.
///
/// The environment variable is the user-facing control, read per kernel
/// dispatch; this test owns it exclusively (no other test in this binary
/// touches it) to avoid races.
#[test]
fn shallowcaps_forward_bit_identical_env_1_vs_8() {
    let (model, images) = model_and_batch();
    let fp = ModelQuant::full_precision(3);

    std::env::set_var("QCN_NUM_THREADS", "1");
    let serial = model.infer(&images, &fp, &mut QuantCtx::from_config(&fp));
    std::env::set_var("QCN_NUM_THREADS", "8");
    let parallel = model.infer(&images, &fp, &mut QuantCtx::from_config(&fp));
    std::env::remove_var("QCN_NUM_THREADS");

    assert_eq!(
        serial.data(),
        parallel.data(),
        "forward pass must not depend on the thread count"
    );
}

/// Same property across every rounding scheme (including stochastic, whose
/// per-sample RNG streams are forked deterministically), via the scoped
/// thread-count override.
#[test]
fn quantized_inference_bit_identical_across_thread_counts() {
    let (model, images) = model_and_batch();
    for scheme in [
        RoundingScheme::Truncation,
        RoundingScheme::RoundToNearest,
        RoundingScheme::Stochastic,
    ] {
        let config = ModelQuant {
            layers: vec![LayerQuant::uniform(6); 3],
            scheme,
            seed: 11,
        };
        let qmodel = model.with_quantized_weights(&config);
        let baseline = with_threads(1, || {
            qmodel.infer(&images, &config, &mut QuantCtx::from_config(&config))
        });
        for threads in [2, 3, 8] {
            let run = with_threads(threads, || {
                qmodel.infer(&images, &config, &mut QuantCtx::from_config(&config))
            });
            assert_eq!(
                run.data(),
                baseline.data(),
                "{scheme:?} inference diverged at {threads} threads"
            );
        }
    }
}

/// Weight quantization itself (Qw rounding at model build time) must also
/// be thread-count invariant so quantized copies agree everywhere.
#[test]
fn weight_quantization_bit_identical_across_thread_counts() {
    let (model, _) = model_and_batch();
    let config = ModelQuant {
        layers: vec![LayerQuant::uniform(4); 3],
        scheme: RoundingScheme::Stochastic,
        seed: 7,
    };
    let a = with_threads(1, || model.with_quantized_weights(&config));
    let b = with_threads(8, || model.with_quantized_weights(&config));
    for (pa, pb) in a.params().iter().zip(b.params()) {
        assert_eq!(pa.data(), pb.data());
    }
}
