//! End-to-end failover acceptance: three replicas behind a `qcn-router`,
//! both engines (fake-quant f32 and true integer fixed-point) × every
//! rounding scheme (TRN / RTN / RTNE / SR), sustained client load while
//! one replica is killed and later restarted **on the same port**
//! (`bind_reusable` + `SocketServer::from_listener`).
//!
//! The contract under test: no accepted request is ever lost or answered
//! with an error, and every response is bit-identical to the cold
//! single-server oracle — the determinism property that makes retries and
//! mid-flight failover safe in the first place. After the restart, the
//! health checker must readmit the replica and the balancer must route
//! real traffic to it again.

use qcn_repro::capsnet::{CapsNet, ModelQuant, QuantCtx, ShallowCaps, ShallowCapsConfig};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::export::pack_model;
use qcn_repro::intinfer::{IntModel, UnitMode};
use qcn_repro::router::{bind_reusable, Router, RouterConfig};
use qcn_repro::serve::{
    Client, FakeQuantEngine, IntEngine, ModelRegistry, ServeConfig, Server, SocketServer,
};
use qcn_repro::tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const IN_FRAC: u8 = 5;
const SAMPLES: usize = 3;

fn shallow_config(scheme: RoundingScheme) -> ModelQuant {
    let mut config = ModelQuant::uniform(3, 5, scheme);
    for lq in &mut config.layers {
        lq.dr_frac = Some(4);
    }
    config.seed = 0xBEEF;
    config
}

/// Deterministic on-grid sample `[1, 16, 16]` at Q1.5.
fn sample(seed: i64) -> Tensor {
    Tensor::from_fn([1, 16, 16], |idx| {
        let i = (idx[1] * 16 + idx[2]) as i64;
        ((i * 37 + seed * 11).rem_euclid(32)) as f32 / 32.0
    })
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// A replica serving both engines under every rounding scheme, on a
/// caller-provided listener (so a restart can reclaim the same port).
fn replica(model: &ShallowCaps, listener: std::net::TcpListener) -> SocketServer {
    let mut registry = ModelRegistry::new();
    for scheme in RoundingScheme::EXTENDED {
        let config = shallow_config(scheme);
        let packed = pack_model(model, &config);
        let int_model = IntModel::load(&model.descriptor(), &packed).unwrap();
        registry
            .register(
                format!("fq-{scheme}"),
                FakeQuantEngine::new(model, config, [1, 16, 16]),
            )
            .unwrap();
        registry
            .register(
                format!("int-{scheme}"),
                IntEngine::new(int_model, IN_FRAC, UnitMode::FloatExact, [1, 16, 16]),
            )
            .unwrap();
    }
    let server = Arc::new(Server::start(
        registry,
        ServeConfig {
            max_batch: 4,
            queue_capacity: 64,
            batch_window: Duration::from_millis(1),
            request_timeout: None,
            workers: 2,
            shed_watermark: None,
        },
    ));
    SocketServer::from_listener(server, listener).unwrap()
}

fn ephemeral_listener() -> std::net::TcpListener {
    std::net::TcpListener::bind("127.0.0.1:0").unwrap()
}

#[test]
fn killing_and_restarting_a_replica_under_load_loses_nothing() {
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
    let samples: Vec<Tensor> = (0..SAMPLES).map(|i| sample(i as i64)).collect();

    // Cold single-server oracles: what every routed response must match
    // bit for bit, no matter which replica answered or how many retries
    // the request survived.
    let mut oracle: BTreeMap<(String, usize), Vec<u32>> = BTreeMap::new();
    for scheme in RoundingScheme::EXTENDED {
        let config = shallow_config(scheme);
        let packed = pack_model(&model, &config);
        let int_model = IntModel::load(&model.descriptor(), &packed).unwrap();
        let qmodel = model.with_quantized_weights(&config);
        for (i, x) in samples.iter().enumerate() {
            let single = Tensor::from_vec(x.data().to_vec(), [1, 1, 16, 16]).unwrap();
            let mut ctx = QuantCtx::from_config(&config);
            oracle.insert(
                (format!("fq-{scheme}"), i),
                bits(&qmodel.infer(&single, &config, &mut ctx)),
            );
            oracle.insert(
                (format!("int-{scheme}"), i),
                bits(&int_model.infer(&single, IN_FRAC, UnitMode::FloatExact)),
            );
        }
    }
    let ids: Vec<String> = RoundingScheme::EXTENDED
        .into_iter()
        .flat_map(|s| [format!("fq-{s}"), format!("int-{s}")])
        .collect();

    let victim_listener = ephemeral_listener();
    let victim_addr = victim_listener.local_addr().unwrap();
    let victim = replica(&model, victim_listener);
    let others: Vec<SocketServer> = (0..2)
        .map(|_| replica(&model, ephemeral_listener()))
        .collect();

    let mut cfg = RouterConfig::new(
        std::iter::once(victim_addr).chain(others.iter().map(|r| r.local_addr())),
    );
    cfg.connect_timeout = Duration::from_millis(250);
    cfg.retry_backoff = Duration::from_millis(2);
    cfg.max_backoff = Duration::from_millis(20);
    cfg.health_interval = Duration::from_millis(100);
    cfg.eject_after = 1;
    cfg.eject_cooldown = Duration::from_millis(200);
    cfg.io_timeout = Duration::from_secs(5);
    let router = Router::bind(cfg, "127.0.0.1:0").unwrap();
    let router_addr = router.local_addr();

    // Sustained load: cycle through every (model, sample) pair, assert
    // bit-exactness on every single response. Any lost or failed request
    // panics the thread and fails the test at join.
    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let stop = Arc::clone(&stop);
        let ids = ids.clone();
        let samples = samples.clone();
        let oracle = oracle.clone();
        thread::spawn(move || -> u64 {
            let mut client = Client::connect(router_addr).unwrap();
            let mut done: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                let id = &ids[(done as usize) % ids.len()];
                let i = (done as usize / ids.len()) % samples.len();
                let out = client
                    .infer(id, &samples[i])
                    .unwrap_or_else(|e| panic!("request {done} ({id}, sample {i}) lost: {e}"));
                assert_eq!(
                    bits(&out),
                    oracle[&(id.clone(), i)],
                    "request {done} ({id}, sample {i}) is not bit-identical"
                );
                done += 1;
            }
            done
        })
    };

    let wait_until = |deadline: Duration, what: &str, cond: &dyn Fn() -> bool| {
        let start = Instant::now();
        while !cond() {
            assert!(start.elapsed() < deadline, "timed out waiting for {what}");
            thread::sleep(Duration::from_millis(20));
        }
    };

    // Phase 1: all three replicas serving.
    thread::sleep(Duration::from_millis(300));

    // Phase 2: kill the victim mid-load. In-flight requests it already
    // accepted drain; anything beyond that fails over to the survivors.
    victim.shutdown();
    wait_until(Duration::from_secs(10), "victim ejection", &|| {
        !router.snapshot().backends[0].available
    });
    thread::sleep(Duration::from_millis(300));

    // Phase 3: restart on the very same port — TIME_WAIT sockets from the
    // first life make a plain bind fail, hence SO_REUSEADDR.
    let revived = replica(&model, bind_reusable(victim_addr).unwrap());
    wait_until(Duration::from_secs(10), "victim readmission", &|| {
        router.snapshot().backends[0].available
    });
    let served_before = router.snapshot().backends[0].ok;
    wait_until(
        Duration::from_secs(10),
        "traffic on the restarted replica",
        &|| router.snapshot().backends[0].ok > served_before,
    );

    stop.store(true, Ordering::Relaxed);
    let total = load.join().expect("a request was lost or answered wrong");
    let snap = router.shutdown();

    assert!(
        total >= ids.len() as u64,
        "load loop barely ran ({total} requests)"
    );
    assert_eq!(snap.failed, 0, "no accepted request may fail: {snap:?}");
    assert_eq!(snap.completed, total);
    assert_eq!(snap.rejected, 0);
    assert!(
        snap.backends[0].ejections >= 1,
        "the killed replica was never ejected"
    );
    assert!(
        snap.backends[0].ok > served_before,
        "the restarted replica saw no traffic"
    );
    for b in &snap.backends {
        assert!(b.ok > 0, "replica {} never served", b.addr);
    }

    revived.shutdown();
    for r in others {
        r.shutdown();
    }
}
