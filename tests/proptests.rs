//! Property-based tests (proptest) on the workspace's core invariants:
//! rounding-scheme laws, tensor broadcast algebra, quantization
//! idempotence, and the Eq. 6 budget solver's postconditions.

use proptest::prelude::*;
use qcn_repro::capsnet::GroupInfo;
use qcn_repro::capsnet::ModelQuant;
use qcn_repro::fixed::{QFormat, Quantizer, RoundingScheme};
use qcn_repro::framework::memory::{solve_eq6, weight_memory_bits};
use qcn_repro::tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_scheme() -> impl Strategy<Value = RoundingScheme> {
    prop_oneof![
        Just(RoundingScheme::Truncation),
        Just(RoundingScheme::RoundToNearest),
        Just(RoundingScheme::Stochastic),
    ]
}

proptest! {
    /// |xq − x| ≤ ε for in-range values, for every scheme (§II-B).
    #[test]
    fn rounding_error_bounded_by_precision(
        x in -0.99f32..0.99,
        frac in 1u8..12,
        scheme in any_scheme(),
        seed in 0u64..1000,
    ) {
        let format = QFormat::with_frac(frac);
        let mut rng = StdRng::seed_from_u64(seed);
        let xq = scheme.round(x, format, &mut rng);
        prop_assert!((xq - x).abs() <= format.precision() + 1e-6);
    }

    /// Truncation never rounds up: xq ≤ x (the negative bias of §II-B).
    #[test]
    fn truncation_never_exceeds_input(x in -0.99f32..0.99, frac in 1u8..12) {
        let format = QFormat::with_frac(frac);
        let mut rng = StdRng::seed_from_u64(0);
        let xq = RoundingScheme::Truncation.round(x, format, &mut rng);
        prop_assert!(xq <= x + 1e-7);
    }

    /// Every rounded value is representable and in the format's range.
    #[test]
    fn rounded_values_are_representable(
        x in -10.0f32..10.0,
        frac in 0u8..16,
        scheme in any_scheme(),
        seed in 0u64..1000,
    ) {
        let format = QFormat::with_frac(frac);
        let mut rng = StdRng::seed_from_u64(seed);
        let xq = scheme.round(x, format, &mut rng);
        prop_assert!(format.is_representable(xq), "{xq} not on the {format} grid");
    }

    /// Quantization is idempotent: rounding a grid value is the identity.
    #[test]
    fn quantization_is_idempotent(
        frac in 0u8..12,
        scheme in any_scheme(),
        seed in 0u64..1000,
        raw in proptest::collection::vec(-0.99f32..0.99, 1..64),
    ) {
        let format = QFormat::with_frac(frac);
        let quantizer = Quantizer::new(format, scheme);
        let t = Tensor::from_vec(raw.clone(), [raw.len()]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let q1 = quantizer.quantize(&t, &mut rng);
        let q2 = quantizer.quantize(&q1, &mut rng);
        prop_assert_eq!(q1, q2);
    }

    /// Wider formats never increase the rounding error (monotone SQNR).
    #[test]
    fn more_bits_never_hurt(x in -0.99f32..0.99, frac in 1u8..10) {
        let mut rng = StdRng::seed_from_u64(0);
        let narrow = RoundingScheme::Truncation.round(x, QFormat::with_frac(frac), &mut rng);
        let wide = RoundingScheme::Truncation.round(x, QFormat::with_frac(frac + 2), &mut rng);
        prop_assert!((wide - x).abs() <= (narrow - x).abs() + 1e-7);
    }

    /// Broadcast is commutative and produces the elementwise-max extents.
    #[test]
    fn broadcast_commutes(
        a in proptest::collection::vec(1usize..4, 1..4),
        b in proptest::collection::vec(1usize..4, 1..4),
    ) {
        let sa = Shape::new(a);
        let sb = Shape::new(b);
        prop_assert_eq!(sa.broadcast(&sb), sb.broadcast(&sa));
    }

    /// a + b == b + a for broadcastable tensors (via scalar broadcast).
    #[test]
    fn tensor_add_commutes_with_broadcast(
        rows in 1usize..5,
        cols in 1usize..5,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform([rows, cols], -1.0, 1.0, &mut rng);
        let row = Tensor::rand_uniform([cols], -1.0, 1.0, &mut rng);
        prop_assert_eq!(&a + &row, &row + &a);
    }

    /// reduce_to_shape is the adjoint of broadcast: total mass preserved.
    #[test]
    fn reduce_to_shape_preserves_sum(
        rows in 1usize..5,
        cols in 1usize..5,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let grad = Tensor::rand_uniform([rows, cols], -1.0, 1.0, &mut rng);
        let reduced = Tensor::reduce_to_shape(&grad, &Shape::new(vec![cols]));
        prop_assert!((reduced.sum() - grad.sum()).abs() < 1e-4);
    }

    /// Eq. 6 postconditions: within budget, maximal, decreasing profile.
    #[test]
    fn eq6_postconditions(
        p in proptest::collection::vec(1usize..10_000, 1..6),
        budget_per_weight in 1u64..40,
    ) {
        let groups: Vec<GroupInfo> = p
            .iter()
            .enumerate()
            .map(|(i, &count)| GroupInfo {
                name: format!("L{i}"),
                weight_count: count,
                activation_count: 1,
                has_routing: false,
            })
            .collect();
        let total: u64 = p.iter().map(|&x| x as u64).sum();
        let budget = total * budget_per_weight;
        if let Some(lengths) = solve_eq6(&groups, budget, 32) {
            // Within budget.
            let cost: u64 = groups
                .iter()
                .zip(&lengths)
                .map(|(g, &n)| g.weight_count as u64 * n as u64)
                .sum();
            prop_assert!(cost <= budget);
            // Non-increasing, ≥ 1, ≤ 32.
            for w in lengths.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
            prop_assert!(lengths.iter().all(|&n| (1..=32).contains(&n)));
        } else {
            // Infeasible only when even 1-bit weights overflow the budget.
            prop_assert!(total > budget);
        }
    }

    /// Weight memory accounting is linear in the per-group bit widths.
    #[test]
    fn weight_memory_is_linear(
        counts in proptest::collection::vec(1usize..1000, 1..5),
        frac in 0u8..23,
    ) {
        let groups: Vec<GroupInfo> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| GroupInfo {
                name: format!("L{i}"),
                weight_count: c,
                activation_count: 1,
                has_routing: false,
            })
            .collect();
        let config = ModelQuant::uniform(groups.len(), frac, RoundingScheme::Truncation);
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(
            weight_memory_bits(&groups, &config),
            total * (1 + frac as u64)
        );
    }

    /// Squash output length is always strictly below 1 and preserves
    /// direction (Eq. 2 invariants) for nonzero vectors.
    #[test]
    fn squash_invariants(
        raw in proptest::collection::vec(-5.0f32..5.0, 2..8),
    ) {
        let n = raw.len();
        let t = Tensor::from_vec(raw.clone(), [1, n]).unwrap();
        let v = t.squash_axis(1);
        let out_norm = v.norm();
        prop_assert!(out_norm < 1.0);
        let in_norm = t.norm();
        if in_norm > 1e-3 {
            // Direction preserved: v ∝ t (check via normalized dot ≈ 1).
            let dot: f32 = t.data().iter().zip(v.data()).map(|(a, b)| a * b).sum();
            prop_assert!((dot / (in_norm * out_norm) - 1.0).abs() < 1e-3);
        }
    }

    /// Softmax rows sum to 1 and are positive for any finite logits.
    #[test]
    fn softmax_is_a_distribution(
        raw in proptest::collection::vec(-30.0f32..30.0, 2..10),
    ) {
        let n = raw.len();
        let t = Tensor::from_vec(raw, [1, n]).unwrap();
        let s = t.softmax_axis(1);
        prop_assert!((s.sum() - 1.0).abs() < 1e-4);
        prop_assert!(s.data().iter().all(|&x| x >= 0.0));
    }
}
