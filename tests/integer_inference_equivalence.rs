//! End-to-end cross-validation of the integer inference engine against the
//! fake-quant f32 reference.
//!
//! The contract under test: loading a `PackedModel` into `IntModel` and
//! running the integer datapath in `FloatExact` unit mode produces output
//! capsules **bit-identical** to `CapsNet::infer` under the same
//! configuration — for every rounding scheme (TRN, RTN, RTNE, SR) and
//! every thread count — on both architectures. `Integer` unit mode (no
//! float arithmetic anywhere) must stay within a small absolute envelope
//! of the reference, since its squash/softmax carry a few-ulp error bound.

use qcn_repro::capsnet::{
    CapsNet, DeepCaps, DeepCapsConfig, ModelQuant, QuantCtx, ShallowCaps, ShallowCapsConfig,
};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::export::pack_model;
use qcn_repro::intinfer::{IntModel, UnitMode};
use qcn_repro::tensor::{parallel, Tensor};

/// A deterministic batch whose values sit exactly on the `2^-frac` grid.
fn gridded_input(b: usize, c: usize, side: usize, frac: u8, seed: i64) -> Tensor {
    let scale = (frac as f32).exp2();
    let n = b * c * side * side;
    let data: Vec<f32> = (0..n)
        .map(|i| {
            let raw = (i as i64 * 37 + seed * 11) % (1 << frac.min(10));
            raw as f32 / scale
        })
        .collect();
    Tensor::from_vec(data, [b, c, side, side]).unwrap()
}

/// Reference fake-quant logits: quantized weights + rounded activations.
fn reference_logits(model: &impl CapsNet, config: &ModelQuant, x: &Tensor) -> Tensor {
    let qmodel = model.with_quantized_weights(config);
    let mut ctx = QuantCtx::from_config(config);
    qmodel.infer(x, config, &mut ctx)
}

fn shallow_setup() -> (ShallowCaps, Tensor) {
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
    let x = gridded_input(3, 1, 16, 5, 1);
    (model, x)
}

fn deepcaps_setup() -> (DeepCaps, Tensor) {
    let model = DeepCaps::new(DeepCapsConfig::small(1), 9);
    let x = gridded_input(2, 1, 16, 5, 2);
    (model, x)
}

fn shallow_config(scheme: RoundingScheme) -> ModelQuant {
    let mut config = ModelQuant::uniform(3, 5, scheme);
    for lq in &mut config.layers {
        lq.dr_frac = Some(4);
    }
    config.seed = 0xBEEF;
    config
}

fn deepcaps_config(scheme: RoundingScheme) -> ModelQuant {
    let mut config = ModelQuant::uniform(4, 5, scheme);
    for lq in &mut config.layers {
        lq.dr_frac = Some(4);
        lq.stream_frac = Some(5);
    }
    config.seed = 0xBEEF;
    config
}

#[test]
fn shallowcaps_integer_logits_match_reference_exactly() {
    let (model, x) = shallow_setup();
    let desc = model.descriptor();
    for scheme in RoundingScheme::EXTENDED {
        let config = shallow_config(scheme);
        let want = reference_logits(&model, &config, &x);
        let engine = IntModel::load(&desc, &pack_model(&model, &config)).unwrap();
        let got = engine.infer(&x, 5, UnitMode::FloatExact);
        assert_eq!(got.dims(), want.dims());
        assert_eq!(got.data(), want.data(), "scheme {scheme:?}");
    }
}

#[test]
fn deepcaps_integer_logits_match_reference_exactly() {
    let (model, x) = deepcaps_setup();
    let desc = model.descriptor();
    for scheme in RoundingScheme::EXTENDED {
        let config = deepcaps_config(scheme);
        let want = reference_logits(&model, &config, &x);
        let engine = IntModel::load(&desc, &pack_model(&model, &config)).unwrap();
        let got = engine.infer(&x, 5, UnitMode::FloatExact);
        assert_eq!(got.dims(), want.dims());
        assert_eq!(got.data(), want.data(), "scheme {scheme:?}");
    }
}

#[test]
fn integer_engine_is_thread_count_invariant_and_matches_reference() {
    // One thread, two threads, an odd seven: the keyed epilogues must make
    // every count produce the single-thread bits, which equal the
    // reference's (itself thread-invariant for the same reason).
    let (model, x) = deepcaps_setup();
    let desc = model.descriptor();
    let config = deepcaps_config(RoundingScheme::Stochastic);
    let want = reference_logits(&model, &config, &x);
    let engine = IntModel::load(&desc, &pack_model(&model, &config)).unwrap();
    for threads in [1usize, 2, 7] {
        let got = parallel::with_threads(threads, || engine.infer(&x, 5, UnitMode::FloatExact));
        assert_eq!(got.data(), want.data(), "threads {threads}");
    }
}

#[test]
fn shallowcaps_thread_invariance() {
    let (model, x) = shallow_setup();
    let desc = model.descriptor();
    let config = shallow_config(RoundingScheme::Stochastic);
    let want = reference_logits(&model, &config, &x);
    let engine = IntModel::load(&desc, &pack_model(&model, &config)).unwrap();
    for threads in [1usize, 2, 7] {
        let got = parallel::with_threads(threads, || engine.infer(&x, 5, UnitMode::FloatExact));
        assert_eq!(got.data(), want.data(), "threads {threads}");
    }
}

#[test]
fn pure_integer_units_stay_close_to_reference() {
    // Integer squash/softmax have few-ulp error bounds per unit, but the
    // routing loop feeds couplings back on themselves for three iterations
    // at Q1.4, so a one-ulp coupling difference can amplify into several
    // output ulps. The envelope below (a dozen ulps of the 2^-4 routing
    // grid) is a sanity bound on that amplification, not bit-exactness —
    // that is what FloatExact mode is for.
    for scheme in [RoundingScheme::Truncation, RoundingScheme::RoundToNearest] {
        let (model, x) = shallow_setup();
        let config = shallow_config(scheme);
        let want = reference_logits(&model, &config, &x);
        let engine = IntModel::load(&model.descriptor(), &pack_model(&model, &config)).unwrap();
        let got = engine.infer(&x, 5, UnitMode::Integer);
        let max_diff = got
            .data()
            .iter()
            .zip(want.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 0.75,
            "integer units drifted {max_diff} from reference ({scheme:?})"
        );
    }
}

#[test]
fn integer_predictions_match_reference() {
    let (model, x) = shallow_setup();
    let config = shallow_config(RoundingScheme::RoundToNearestEven);
    let qmodel = model.with_quantized_weights(&config);
    let mut ctx = QuantCtx::from_config(&config);
    let want = qmodel.predict(&x, &config, &mut ctx);
    let engine = IntModel::load(&model.descriptor(), &pack_model(&model, &config)).unwrap();
    let got = engine.predict(&x, 5, UnitMode::FloatExact);
    assert_eq!(got, want);
}

#[test]
fn load_rejects_structurally_invalid_blobs() {
    let (model, _) = shallow_setup();
    let desc = model.descriptor();
    // Full-precision group: no integer form.
    let mut config = shallow_config(RoundingScheme::Truncation);
    config.layers[0].weight_frac = None;
    let packed = pack_model(&model, &config);
    assert!(IntModel::load(&desc, &packed).is_err());
    // Missing act width.
    let mut config = shallow_config(RoundingScheme::Truncation);
    config.layers[2].act_frac = None;
    let packed = pack_model(&model, &config);
    assert!(IntModel::load(&desc, &packed).is_err());
    // DeepCaps block without a streaming width.
    let (dmodel, _) = deepcaps_setup();
    let mut dconfig = deepcaps_config(RoundingScheme::Truncation);
    dconfig.layers[1].stream_frac = None;
    let packed = pack_model(&dmodel, &dconfig);
    assert!(IntModel::load(&dmodel.descriptor(), &packed).is_err());
}
