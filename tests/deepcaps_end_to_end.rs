//! DeepCaps-specific integration coverage: train a tiny DeepCaps, run the
//! framework, and check the invariants unique to the deeper architecture
//! (two routing sites, per-block groups, Eq. 6's decreasing profile over
//! four groups).

use qcn_repro::capsnet::{
    accuracy, train, CapsNet, DeepCaps, DeepCapsConfig, ModelQuant, TrainConfig,
};
use qcn_repro::datasets::augment::AugmentPolicy;
use qcn_repro::datasets::{Dataset, SynthKind};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::{run, FrameworkConfig, Outcome};
use std::sync::OnceLock;

fn trained() -> (&'static DeepCaps, &'static Dataset) {
    static CELL: OnceLock<(DeepCaps, Dataset)> = OnceLock::new();
    let (m, d) = CELL.get_or_init(|| {
        let mut config = DeepCapsConfig::small(1);
        config.conv_channels = 8;
        config.blocks[0].types = 2;
        config.blocks[1].types = 2;
        config.digit_dim = 6;
        let mut model = DeepCaps::new(config, 31);
        let (train_set, test_set) = SynthKind::Mnist.train_test(400, 120, 31);
        let report = train(
            &mut model,
            &train_set,
            &test_set,
            &TrainConfig {
                epochs: 4,
                batch_size: 25,
                lr: 0.003,
                augment: AugmentPolicy::none(),
                ..TrainConfig::default()
            },
        );
        assert!(
            report.final_accuracy > 0.5,
            "DeepCaps training failed: {:.1}%",
            report.final_accuracy * 100.0
        );
        (model, test_set)
    });
    (m, d)
}

#[test]
fn deepcaps_framework_produces_valid_result() {
    let (model, test) = trained();
    let groups = model.groups();
    assert_eq!(groups.len(), 4);
    let fp32_bits: u64 = groups.iter().map(|g| g.weight_count as u64 * 32).sum();
    let report = run(
        model,
        test,
        &FrameworkConfig {
            acc_tol: 0.05,
            memory_budget_bits: fp32_bits / 4,
            ..FrameworkConfig::default()
        },
    );
    for result in report.outcome.results() {
        // Weight widths follow a non-increasing profile when all set.
        let widths: Vec<u8> = result
            .config
            .layers
            .iter()
            .filter_map(|l| l.weight_frac)
            .collect();
        for w in widths.windows(2) {
            assert!(w[0] >= w[1], "Eq. 6 profile violated: {widths:?}");
        }
    }
    if let Outcome::Satisfied(result) = &report.outcome {
        assert!(result.weight_mem_bits <= fp32_bits / 4);
        // Both routing groups (B3 skip and L4) must have DR widths.
        assert!(result.config.layers[2].dr_frac.is_some());
        assert!(result.config.layers[3].dr_frac.is_some());
    }
}

#[test]
fn deepcaps_quantized_accuracy_is_monotone_ish_in_width() {
    // Coarse sanity: very wide quantization should be at least as good as
    // very narrow quantization.
    let (model, test) = trained();
    let acc_at = |frac: u8| {
        let config = ModelQuant::uniform(4, frac, RoundingScheme::RoundToNearest);
        let q = model.with_quantized_weights(&config);
        accuracy(&q, test, &config, 40)
    };
    assert!(acc_at(12) >= acc_at(1));
}

#[test]
fn deepcaps_dr_only_quantization_is_tolerated() {
    // The paper's central observation, on the deep model: quantizing only
    // the routing data to few bits barely moves accuracy.
    let (model, test) = trained();
    let fp = ModelQuant::full_precision(4);
    let fp_acc = accuracy(model, test, &fp, 40);
    let mut config = ModelQuant::full_precision(4);
    config.layers[2].dr_frac = Some(4);
    config.layers[3].dr_frac = Some(4);
    let dr_acc = accuracy(model, test, &config, 40);
    assert!(
        dr_acc >= fp_acc - 0.05,
        "4-bit DR should be nearly free: {fp_acc} → {dr_acc}"
    );
}
