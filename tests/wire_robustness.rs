//! Property-based robustness of the serving wire protocol: the decoders
//! that face untrusted bytes (`read_frame`, `decode_request_frame`,
//! `decode_response`) must return **typed errors, never panic, never
//! over-allocate** — for truncations, bit flips, and hostile length
//! prefixes alike. A router sits between untrusted clients and the
//! fleet, so every one of these paths is reachable from the network.

use proptest::prelude::*;
use qcn_repro::serve::wire::{
    self, decode_request_frame, decode_response, encode_request, encode_response,
    encode_stats_request, read_frame, WireError, WireFrame, WireRequest, WireResponse,
    MAX_FRAME_BYTES,
};
use qcn_repro::serve::{ServeError, SubmitError};
use qcn_repro::tensor::Tensor;
use std::io::Cursor;

const MODEL_NAMES: [&str; 4] = ["m", "fq-rtn", "int-sr", "a-rather-long-model-name"];

fn any_tensor() -> impl Strategy<Value = Tensor> {
    (
        (1usize..4, 1usize..4, 1usize..4),
        proptest::collection::vec(-8.0f32..8.0, 1..28),
    )
        .prop_map(|((c, h, w), vals)| {
            Tensor::from_fn([c, h, w], |idx| {
                let i = (idx[0] * h + idx[1]) * w + idx[2];
                vals[i % vals.len()]
            })
        })
}

fn any_request() -> impl Strategy<Value = WireRequest> {
    (0u64..u64::MAX, 0usize..MODEL_NAMES.len(), any_tensor()).prop_map(|(id, m, input)| {
        WireRequest {
            id,
            model: MODEL_NAMES[m].to_string(),
            input,
        }
    })
}

/// Every arm of the response union: a tensor body or one of the typed
/// failures (the selector walks all seven encodings).
fn any_response() -> impl Strategy<Value = WireResponse> {
    (0u64..u64::MAX, 0usize..7, any_tensor()).prop_map(|(id, sel, t)| {
        let result = match sel {
            0 => Ok(t),
            1 => Err(WireError::Submit(SubmitError::QueueFull { capacity: 7 })),
            2 => Err(WireError::Submit(SubmitError::UnknownModel(
                "missing".to_string(),
            ))),
            3 => Err(WireError::Submit(SubmitError::ShuttingDown)),
            4 => Err(WireError::Serve(ServeError::DeadlineExceeded)),
            5 => Err(WireError::Serve(ServeError::EngineFailure(
                "router: no replica answered".to_string(),
            ))),
            _ => Err(WireError::Serve(ServeError::WorkerLost)),
        };
        WireResponse { id, result }
    })
}

/// A framed request as it travels on the socket: 4-byte BE length prefix
/// plus payload.
fn framed(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    wire::write_frame(&mut out, payload).unwrap();
    out
}

fn tensor_bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// Round-trip: every encodable request decodes back bit-identically
    /// (id, model name, tensor dims, and raw f32 bits).
    #[test]
    fn request_roundtrip_is_lossless(req in any_request()) {
        let payload = encode_request(&req);
        prop_assert_eq!(wire::request_id(&payload), Some(req.id));
        let WireFrame::Infer(back) = decode_request_frame(&payload).unwrap() else {
            panic!("infer request decoded as a different frame kind");
        };
        prop_assert_eq!(back.id, req.id);
        prop_assert_eq!(&back.model, &req.model);
        prop_assert_eq!(back.input.shape().dims(), req.input.shape().dims());
        prop_assert_eq!(tensor_bits(&back.input), tensor_bits(&req.input));
    }

    /// Round-trip for responses, including every typed error arm.
    #[test]
    fn response_roundtrip_is_lossless(resp in any_response()) {
        let payload = encode_response(&resp);
        prop_assert_eq!(wire::response_id(&payload), Some(resp.id));
        let back = decode_response(&payload).unwrap();
        prop_assert_eq!(back.id, resp.id);
        match (&back.result, &resp.result) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.shape().dims(), b.shape().dims());
                prop_assert_eq!(tensor_bits(a), tensor_bits(b));
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            _ => panic!("Ok/Err arm flipped in transit"),
        }
    }

    /// Truncating a valid frame at any point yields a typed decode error
    /// (payload cut) or a clean `Ok(None)`/`UnexpectedEof` (prefix cut) —
    /// never a panic, never a bogus success.
    #[test]
    fn truncated_frames_fail_typed(req in any_request(), keep in 0usize..64) {
        let full = framed(&encode_request(&req));
        let cut = keep.min(full.len() - 1);
        let mut r = Cursor::new(&full[..cut]);
        match read_frame(&mut r) {
            Ok(Some(payload)) => {
                // cut < full.len(), so a "whole" frame can only mean the
                // payload itself was shortened — the decoder must reject.
                prop_assert!(decode_request_frame(&payload).is_err());
            }
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only before any byte"),
            Err(e) => {
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
        }
        // The payload-level decoder on the truncated payload itself.
        let payload = encode_request(&req);
        let cut = keep.min(payload.len() - 1);
        prop_assert!(decode_request_frame(&payload[..cut]).is_err());
    }

    /// Single-bit flips anywhere in a framed request: the reader and the
    /// decoders either succeed (the flip hit a benign byte — the id, a
    /// tensor value) or fail typed. Nothing panics, and a corrupted
    /// length prefix can never demand more than `MAX_FRAME_BYTES`.
    #[test]
    fn bit_flips_never_panic(req in any_request(), byte in 0usize..512, bit in 0u8..8) {
        let mut full = framed(&encode_request(&req));
        let n = full.len();
        full[byte % n] ^= 1 << bit;
        let mut r = Cursor::new(&full[..]);
        if let Ok(Some(payload)) = read_frame(&mut r) {
            prop_assert!(payload.len() <= MAX_FRAME_BYTES);
            let _ = decode_request_frame(&payload); // must not panic
            let _ = decode_response(&payload); // wrong kind on purpose
        }
    }

    /// Completely random payloads against every decoder: typed results
    /// only. (Stats requests are 9 bytes; random blobs exercise every
    /// length check in between.)
    #[test]
    fn random_payloads_fail_typed(bytes in proptest::collection::vec(0u8..=255, 0..96)) {
        let _ = decode_request_frame(&bytes);
        let _ = decode_response(&bytes);
        let _ = wire::decode_stats_response(&bytes);
    }

    /// A hostile length prefix announcing more than `MAX_FRAME_BYTES` is
    /// rejected by `read_frame` *before* allocating the announced size.
    #[test]
    fn oversized_announcements_are_rejected(extra in 1u32..u32::MAX / 2, junk in 0u8..=255) {
        let announced = (MAX_FRAME_BYTES as u32).saturating_add(extra);
        let mut hostile = announced.to_be_bytes().to_vec();
        hostile.extend(std::iter::repeat_n(junk, 16));
        let mut r = Cursor::new(&hostile[..]);
        let err = read_frame(&mut r).expect_err("oversized frame must be refused");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}

/// A stats request survives id rewriting (the router's multiplexing
/// primitive) and still decodes as a stats frame with the new id.
#[test]
fn id_rewrite_preserves_frame_kind() {
    let mut payload = encode_stats_request(42);
    wire::rewrite_request_id(&mut payload, 7777).unwrap();
    match decode_request_frame(&payload).unwrap() {
        WireFrame::Stats { id } => assert_eq!(id, 7777),
        other => panic!("stats frame decoded as {other:?}"),
    }
}
