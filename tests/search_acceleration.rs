//! Exactness guarantees of the search-time acceleration layer: the staged
//! forward with prefix-activation reuse, the early-exit scorer and the
//! parallel candidate probes must be *bit-identical* to the naive
//! monolithic evaluation — for every rounding scheme in the library and
//! for every thread count. Acceleration is allowed to change wall-clock
//! time and evaluator work counters, never results.

use qcn_repro::capsnet::{
    train, CapsNet, DeepCaps, DeepCapsConfig, LayerQuant, ModelQuant, ShallowCaps,
    ShallowCapsConfig, TrainConfig,
};
use qcn_repro::datasets::augment::AugmentPolicy;
use qcn_repro::datasets::{Dataset, SynthKind};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::{run, Evaluator, FrameworkConfig, Outcome, RunReport, SearchAccel};
use qcn_repro::tensor::parallel;
use std::sync::OnceLock;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// A descent-like sweep of configurations sharing long prefixes, so the
/// prefix-activation cache is actually exercised (layer-wise search only
/// ever changes a suffix).
fn descent_sweep(layers: usize, scheme: RoundingScheme) -> Vec<ModelQuant> {
    let mut sweep = vec![ModelQuant::full_precision(layers)];
    for frac in [8u8, 6] {
        sweep.push(ModelQuant::uniform(layers, frac, scheme));
    }
    // Lower the suffix one layer at a time, as Algorithm 2 does.
    let base = ModelQuant::uniform(layers, 6, scheme);
    for start in 1..layers {
        let mut c = base.clone();
        for l in start..layers {
            c.layers[l].act_frac = Some(4);
        }
        sweep.push(c);
    }
    // Dynamic-routing variants on the last group, as Algorithm 3 does.
    for dr in [5u8, 3] {
        let mut c = base.clone();
        c.layers[layers - 1].dr_frac = Some(dr);
        sweep.push(c);
    }
    // Explicit Q_DR equal to the fallback: must hit the canonical memo.
    let mut c = base.clone();
    c.layers[layers - 1].dr_frac = Some(6);
    sweep.push(c);
    for (i, c) in sweep.iter_mut().enumerate() {
        c.scheme = scheme;
        c.seed = if scheme == RoundingScheme::Stochastic {
            i as u64 % 3
        } else {
            0
        };
    }
    sweep
}

/// Asserts that accelerated evaluation of `sweep` reproduces the naive
/// accuracies bit-for-bit on `model`, for every library scheme and thread
/// count.
fn assert_sweep_bit_identical<M: CapsNet + Sync>(model: &M, ds: &Dataset, batch: usize) {
    let layers = model.groups().len();
    for scheme in RoundingScheme::EXTENDED {
        let sweep = descent_sweep(layers, scheme);
        let mut naive = Evaluator::with_accel(model, ds, batch, SearchAccel::naive());
        let reference: Vec<u32> = sweep.iter().map(|c| naive.accuracy(c).to_bits()).collect();
        for threads in THREAD_COUNTS {
            parallel::with_threads(threads, || {
                let mut accel = Evaluator::with_accel(model, ds, batch, SearchAccel::default());
                for (config, &want) in sweep.iter().zip(&reference) {
                    let got = accel.accuracy(config).to_bits();
                    assert_eq!(
                        got, want,
                        "accuracy diverged under acceleration: scheme {scheme}, \
                         {threads} threads, config {config:?}"
                    );
                }
                let stats = accel.stats();
                if scheme != RoundingScheme::Stochastic {
                    assert!(
                        stats.prefix_hits > 0,
                        "descent sweep should reuse prefixes (scheme {scheme}): {stats:?}"
                    );
                    assert!(
                        stats.memo_hits > 0,
                        "canonical Q_DR fallback should hit the memo (scheme {scheme}): {stats:?}"
                    );
                }
                assert!(stats.evaluations <= sweep.len());
            });
        }
    }
}

#[test]
fn shallowcaps_staged_prefix_reuse_is_bit_identical() {
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 3);
    let ds = SynthKind::Mnist.generate(30, 3);
    assert_sweep_bit_identical(&model, &ds, 10);
}

#[test]
fn deepcaps_staged_prefix_reuse_is_bit_identical() {
    let mut config = DeepCapsConfig::small(1);
    config.conv_channels = 8;
    config.blocks[0].types = 2;
    config.blocks[1].types = 2;
    config.digit_dim = 6;
    let model = DeepCaps::new(config, 7);
    let ds = SynthKind::Mnist.generate(24, 7);
    assert_sweep_bit_identical(&model, &ds, 8);
}

/// A lightly trained tiny ShallowCaps (cached per test binary) so the
/// framework's accuracy thresholds are meaningful and both paths of
/// Algorithm 1 are reachable.
fn trained() -> (&'static ShallowCaps, &'static Dataset) {
    static CELL: OnceLock<(ShallowCaps, Dataset)> = OnceLock::new();
    let (m, d) = CELL.get_or_init(|| {
        let config = ShallowCapsConfig {
            conv_channels: 8,
            primary_types: 4,
            digit_dim: 6,
            ..ShallowCapsConfig::small(1)
        };
        let mut model = ShallowCaps::new(config, 5);
        let (train_set, test_set) = SynthKind::Mnist.train_test(200, 60, 5);
        train(
            &mut model,
            &train_set,
            &test_set,
            &TrainConfig {
                epochs: 3,
                batch_size: 25,
                lr: 0.003,
                augment: AugmentPolicy::none(),
                ..TrainConfig::default()
            },
        );
        (model, test_set)
    });
    (m, d)
}

fn assert_reports_identical(naive: &RunReport, accel: &RunReport, context: &str) {
    assert_eq!(
        naive.acc_fp32.to_bits(),
        accel.acc_fp32.to_bits(),
        "{context}: fp32 reference diverged"
    );
    assert_eq!(naive.step1_frac, accel.step1_frac, "{context}: step 1");
    match (&naive.outcome, &accel.outcome) {
        (Outcome::Satisfied(a), Outcome::Satisfied(b)) => {
            assert_eq!(a.config, b.config, "{context}: selected config");
            assert_eq!(
                a.accuracy.to_bits(),
                b.accuracy.to_bits(),
                "{context}: reported accuracy"
            );
        }
        (
            Outcome::Fallback {
                memory: am,
                accuracy: aa,
            },
            Outcome::Fallback {
                memory: bm,
                accuracy: ba,
            },
        ) => {
            assert_eq!(am.config, bm.config, "{context}: memory config");
            assert_eq!(aa.config, ba.config, "{context}: accuracy config");
            assert_eq!(am.accuracy.to_bits(), bm.accuracy.to_bits(), "{context}");
            assert_eq!(aa.accuracy.to_bits(), ba.accuracy.to_bits(), "{context}");
        }
        _ => panic!("{context}: acceleration changed the Algorithm 1 path"),
    }
}

/// The full Algorithm 1 run — binary search, Eq. 6, layer-wise descent and
/// DR specialisation — must select the same configurations and report the
/// same accuracies with acceleration on as with `SearchAccel::naive()`,
/// for every scheme and thread count.
#[test]
fn framework_run_is_invariant_under_acceleration_and_threads() {
    let (model, ds) = trained();
    let total_weights: u64 = model.groups().iter().map(|g| g.weight_count as u64).sum();
    let base = FrameworkConfig {
        acc_tol: 0.2,
        memory_budget_bits: total_weights * 8,
        eval_batch: 20,
        ..FrameworkConfig::default()
    };
    for scheme in RoundingScheme::EXTENDED {
        let naive_report = run(
            model,
            ds,
            &FrameworkConfig {
                scheme,
                accel: SearchAccel::naive(),
                ..base.clone()
            },
        );
        for threads in THREAD_COUNTS {
            let accel_report = parallel::with_threads(threads, || {
                run(
                    model,
                    ds,
                    &FrameworkConfig {
                        scheme,
                        ..base.clone()
                    },
                )
            });
            assert_reports_identical(
                &naive_report,
                &accel_report,
                &format!("scheme {scheme}, {threads} threads"),
            );
            // Speculative probes (wasted parallel lookahead) may exceed
            // the sequential count, but the *useful* probes — everything
            // up to each round's first failure — never do.
            let useful = accel_report.stats.evaluations - accel_report.stats.speculative_probes;
            assert!(
                useful <= naive_report.evaluations,
                "scheme {scheme}, {threads} threads: {useful} useful evals vs naive {}",
                naive_report.evaluations
            );
        }
    }
}

/// Early exit in isolation (no prefix reuse, no parallel probes) drives
/// the layer-wise and DR descents to the same Pareto configuration as
/// exact full-batch scoring, and the final accuracy read back is exact.
#[test]
fn early_exit_descent_matches_exact_mode() {
    use qcapsnets::algorithms::{dr_quant, layerwise, ParamDomain};
    let (model, ds) = trained();
    let early_only = SearchAccel {
        prefix_reuse: false,
        parallel_probes: false,
        ..SearchAccel::default()
    };
    for scheme in [RoundingScheme::RoundToNearest, RoundingScheme::Stochastic] {
        let start = ModelQuant::uniform(3, 8, scheme);
        let mut exact = Evaluator::with_accel(model, ds, 20, SearchAccel::naive());
        let acc_min = exact.accuracy(&start) * 0.9;
        let want_lw = layerwise(&mut exact, &start, ParamDomain::Activations, acc_min);
        let want_dr = dr_quant(&mut exact, &want_lw, acc_min);
        let want_acc = exact.accuracy(&want_dr).to_bits();

        let mut early = Evaluator::with_accel(model, ds, 20, early_only);
        let got_lw = layerwise(&mut early, &start, ParamDomain::Activations, acc_min);
        let got_dr = dr_quant(&mut early, &got_lw, acc_min);
        assert_eq!(want_lw, got_lw, "layerwise diverged under early exit");
        assert_eq!(want_dr, got_dr, "dr_quant diverged under early exit");
        assert_eq!(
            early.accuracy(&got_dr).to_bits(),
            want_acc,
            "early-exit evaluator must still report exact accuracies"
        );
    }
}

/// Layer-uniform sweeps never share prefixes (layer 0 changes every time),
/// so the cache must not fabricate reuse — it simply stays cold while
/// results remain exact.
#[test]
fn uniform_sweep_stays_exact_without_shared_prefixes() {
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 11);
    let ds = SynthKind::Mnist.generate(20, 11);
    let mut naive = Evaluator::with_accel(&model, &ds, 10, SearchAccel::naive());
    let mut accel = Evaluator::with_accel(&model, &ds, 10, SearchAccel::default());
    for frac in 0..10u8 {
        let c = ModelQuant::uniform(3, frac, RoundingScheme::RoundToNearestEven);
        assert_eq!(naive.accuracy(&c).to_bits(), accel.accuracy(&c).to_bits());
    }
    assert_eq!(accel.stats().memo_hits, 0);
}

/// `LayerQuant` default-field sanity for the sweep builder above: uniform
/// configs leave DR and stream widths unset, which is what makes the
/// canonical-memo assertions in the sweep meaningful.
#[test]
fn sweep_configs_leave_dr_unset_except_where_probed() {
    let sweep = descent_sweep(3, RoundingScheme::RoundToNearest);
    assert!(sweep
        .iter()
        .all(|c| c.layers[0].dr_frac.is_none() && c.layers[0].stream_frac.is_none()));
    assert!(sweep.iter().any(|c| c.layers[2].dr_frac == Some(6)));
    let _ = LayerQuant::full_precision();
}
