//! Negative-path coverage for `IntModel::load`: corrupted or mismatched
//! `PackedModel` blobs must come back as typed [`LoadError`]s, never as a
//! panic inside the bit unpacker. Each test takes a known-good packed
//! ShallowCaps model, damages exactly one structural claim, and checks
//! both the error variant and that the pristine blob still loads.

use qcn_repro::capsnet::{DeepCaps, DeepCapsConfig, ModelQuant, ShallowCaps, ShallowCapsConfig};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::export::{pack_model, PackedModel};
use qcn_repro::intinfer::{IntModel, LoadError};

/// A packed ShallowCaps model under the standard uniform Q1.5 recipe
/// (wordlength 6 per weight), plus its descriptor.
fn packed_shallow() -> (qcn_repro::capsnet::descriptor::ModelDesc, PackedModel) {
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
    let mut config = ModelQuant::uniform(3, 5, RoundingScheme::RoundToNearest);
    for lq in &mut config.layers {
        lq.dr_frac = Some(4);
    }
    (model.descriptor(), pack_model(&model, &config))
}

#[test]
fn pristine_blob_loads() {
    let (desc, packed) = packed_shallow();
    let loaded = IntModel::load(&desc, &packed).expect("undamaged blob must load");
    assert_eq!(loaded.num_classes(), desc.num_classes);
}

#[test]
fn truncated_blob_is_a_typed_error() {
    let (desc, mut packed) = packed_shallow();
    // Chop the tail off the first group's bit stream; the declared count
    // and wordlength no longer fit.
    let blob = &mut packed.groups[0].data;
    let full_bytes = blob.len();
    blob.truncate(full_bytes / 2);
    match IntModel::load(&desc, &packed) {
        Err(LoadError::TruncatedBlob {
            group,
            needed_bits,
            have_bits,
        }) => {
            assert_eq!(group, packed.groups[0].name);
            assert_eq!(have_bits, (full_bytes / 2) * 8);
            assert!(needed_bits > have_bits);
        }
        other => panic!("expected TruncatedBlob, got {other:?}"),
    }
}

#[test]
fn emptied_blob_is_a_typed_error() {
    let (desc, mut packed) = packed_shallow();
    packed.groups[1].data.clear();
    assert!(matches!(
        IntModel::load(&desc, &packed),
        Err(LoadError::TruncatedBlob { have_bits: 0, .. })
    ));
}

#[test]
fn bit_flipped_blob_is_a_checksum_mismatch() {
    let (desc, packed) = packed_shallow();
    for (g, group) in packed.groups.iter().enumerate() {
        // Flip one mid-stream bit per group: length and geometry stay
        // valid, so only the CRC-32 can catch it.
        let mut damaged = packed.clone();
        let mid = group.data.len() / 2;
        damaged.groups[g].data[mid] ^= 0x04;
        match IntModel::load(&desc, &damaged) {
            Err(LoadError::ChecksumMismatch {
                group: name,
                stored,
                computed,
            }) => {
                assert_eq!(name, group.name);
                assert_eq!(stored, group.crc32);
                assert_ne!(computed, stored);
            }
            other => panic!("group {g}: expected ChecksumMismatch, got {other:?}"),
        }
    }
}

#[test]
fn corrupted_stored_checksum_is_a_typed_error() {
    let (desc, mut packed) = packed_shallow();
    // The data is pristine but the recorded checksum lies.
    packed.groups[0].crc32 ^= 0xDEAD_BEEF;
    assert!(matches!(
        IntModel::load(&desc, &packed),
        Err(LoadError::ChecksumMismatch { .. })
    ));
}

#[test]
fn corrupted_wordlength_is_a_typed_error() {
    let (desc, packed) = packed_shallow();
    // Both directions must fail cleanly: a wider word would read past the
    // stream, a narrower one would silently decode garbage weights.
    for bad in [9u8, 3u8] {
        let mut damaged = packed.clone();
        damaged.groups[1].wordlength = bad;
        match IntModel::load(&desc, &damaged) {
            Err(LoadError::WordlengthMismatch {
                group,
                expected,
                found,
            }) => {
                assert_eq!(group, damaged.groups[1].name);
                assert_eq!(expected, 6, "recipe is Q1.5: 1 + 5 frac bits");
                assert_eq!(found, bad);
            }
            other => panic!("expected WordlengthMismatch for {bad}, got {other:?}"),
        }
    }
}

#[test]
fn corrupted_weight_count_is_a_typed_error() {
    let (desc, mut packed) = packed_shallow();
    let honest = packed.groups[2].count;
    packed.groups[2].count = honest + 7;
    match IntModel::load(&desc, &packed) {
        Err(LoadError::WeightCountMismatch {
            expected, found, ..
        }) => {
            assert_eq!(expected, honest);
            assert_eq!(found, honest + 7);
        }
        other => panic!("expected WeightCountMismatch, got {other:?}"),
    }
}

#[test]
fn foreign_descriptor_is_a_typed_error() {
    // A ShallowCaps blob (3 groups) offered to a DeepCaps descriptor
    // (4 groups): structural mismatch, caught before anything is decoded.
    let (_, packed) = packed_shallow();
    let deep = DeepCaps::new(DeepCapsConfig::small(1), 9).descriptor();
    assert!(matches!(
        IntModel::load(&deep, &packed),
        Err(LoadError::GroupCountMismatch {
            expected: 4,
            found: 3
        })
    ));
}
