//! Bit-identity of the fused quantization epilogues (paper Fig. 9's Qa /
//! Qw / Q_DR rounding points executed inside the blocked kernels) against
//! the reference round-after-compute composition.
//!
//! The contract under test: for every rounding scheme — including
//! stochastic rounding, whose draw stream is keyed by global element
//! position — a kernel with a [`FusedQuant`] writeback epilogue produces
//! exactly the bytes of the unfused kernel followed by a sequential
//! whole-tensor rounding pass, for every thread count.

use proptest::prelude::*;
use qcn_repro::capsnet::layers::{
    caps_votes_infer, caps_votes_infer_fused, Activation, CapsFc, Conv2dLayer, PrimaryCaps,
};
use qcn_repro::capsnet::{LayerQuant, QuantCtx};
use qcn_repro::fixed::{FusedQuant, QFormat, Quantizer, RoundingScheme};
use qcn_repro::tensor::conv::{conv2d, conv2d_fused, Conv2dSpec};
use qcn_repro::tensor::parallel::with_threads;
use qcn_repro::tensor::reduce::expand_to;
use qcn_repro::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SCHEMES: [RoundingScheme; 4] = [
    RoundingScheme::Truncation,
    RoundingScheme::RoundToNearest,
    RoundingScheme::RoundToNearestEven,
    RoundingScheme::Stochastic,
];

const THREADS: [usize; 3] = [1, 2, 7];

fn any_scheme() -> impl Strategy<Value = RoundingScheme> {
    prop_oneof![
        Just(RoundingScheme::Truncation),
        Just(RoundingScheme::RoundToNearest),
        Just(RoundingScheme::RoundToNearestEven),
        Just(RoundingScheme::Stochastic),
    ]
}

fn fused(frac: u8, scheme: RoundingScheme, base: u64) -> FusedQuant {
    FusedQuant::new(Quantizer::new(QFormat::with_frac(frac), scheme), base)
}

/// Reference: compute unfused, then round the whole tensor in one
/// sequential pass with the *same* position-keyed stream.
fn round_after(t: &Tensor, fq: &FusedQuant) -> Tensor {
    let mut out = t.clone();
    fq.quantize_inplace(&mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// matmul with a fused rounding epilogue ≡ matmul then round, bitwise,
    /// across schemes and thread counts (row blocks land on different
    /// workers at different thread counts).
    #[test]
    fn matmul_fused_bit_identical_to_round_after(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..80,
        frac in 1u8..12,
        scheme in any_scheme(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        let fq = fused(frac, scheme, seed ^ 0xABCD);
        let reference = round_after(&a.matmul(&b), &fq);
        for t in THREADS {
            let got = with_threads(t, || {
                let epi = |off: usize, row: &mut [f32]| fq.apply(off, row);
                a.matmul_fused(&b, Some(&epi))
            });
            prop_assert_eq!(got.data(), reference.data(), "{:?}, {} threads", scheme, t);
        }
    }

    /// conv2d with a fused rounding epilogue (bias + rounding in the
    /// writeback hook) ≡ conv2d then round, bitwise.
    #[test]
    fn conv2d_fused_bit_identical_to_round_after(
        b in 1usize..3,
        ci in 1usize..4,
        co in 1usize..6,
        hw in 4usize..9,
        stride in 1usize..3,
        pad in 0usize..2,
        frac in 1u8..12,
        scheme in any_scheme(),
        seed in 0u64..1000,
    ) {
        let spec = Conv2dSpec::new(3, 3, stride, pad);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform([b, ci, hw, hw], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([co, ci, 3, 3], -0.5, 0.5, &mut rng);
        let bias = Tensor::rand_uniform([co], -0.25, 0.25, &mut rng);
        let fq = fused(frac, scheme, seed ^ 0x1234);
        let reference = round_after(&conv2d(&x, &w, Some(&bias), spec), &fq);
        for t in THREADS {
            let got = with_threads(t, || {
                let epi = |off: usize, row: &mut [f32]| fq.apply(off, row);
                conv2d_fused(&x, &w, Some(&bias), spec, Some(&epi))
            });
            prop_assert_eq!(got.data(), reference.data(), "{:?}, {} threads", scheme, t);
        }
    }

    /// Capsule votes û with the fused Q_DR epilogue ≡ votes then round,
    /// bitwise (each (batch, capsule) panel is rounded by its worker).
    #[test]
    fn caps_votes_fused_bit_identical_to_round_after(
        b in 1usize..3,
        ni in 1usize..12,
        di in 1usize..5,
        nj in 1usize..6,
        dj in 1usize..6,
        frac in 1u8..12,
        scheme in any_scheme(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = Tensor::rand_uniform([b, ni, di], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([ni, nj, di, dj], -1.0, 1.0, &mut rng);
        let fq = fused(frac, scheme, seed ^ 0x77);
        let reference = round_after(&caps_votes_infer(&u, &w), &fq);
        for t in THREADS {
            let got = with_threads(t, || caps_votes_infer_fused(&u, &w, Some(&fq)));
            prop_assert_eq!(got.data(), reference.data(), "{:?}, {} threads", scheme, t);
        }
    }
}

/// A ShallowCaps-shaped stack (conv stem → PrimaryCaps → CapsFc) built from
/// the public layer types, with every quantization point active.
struct Stack {
    conv: Conv2dLayer,
    primary: PrimaryCaps,
    capsfc: CapsFc,
    lq: LayerQuant,
}

impl Stack {
    fn new(scheme: RoundingScheme) -> Self {
        let mut rng = StdRng::seed_from_u64(7);
        let conv = Conv2dLayer::new(
            1,
            6,
            Conv2dSpec::new(3, 3, 1, 1),
            Activation::BoundedRelu,
            &mut rng,
        );
        let primary = PrimaryCaps::new(6, 2, 4, Conv2dSpec::new(3, 3, 2, 0), &mut rng);
        // 12×12 input → conv (s1 p1) 12×12 → primary (s2 p0) 5×5 → 50 caps.
        let capsfc = CapsFc::new(50, 4, 5, 6, 3, &mut rng);
        let lq = LayerQuant {
            weight_frac: Some(8),
            act_frac: Some(6),
            dr_frac: Some(5),
            ..LayerQuant::full_precision()
        };
        let mut stack = Stack {
            conv,
            primary,
            capsfc,
            lq,
        };
        let mut wctx = QuantCtx::new(scheme, 3);
        stack.conv.quantize_weights(stack.lq.weight_frac, &mut wctx);
        stack
            .primary
            .quantize_weights(stack.lq.weight_frac, &mut wctx);
        stack
            .capsfc
            .quantize_weights(stack.lq.weight_frac, &mut wctx);
        stack
    }

    fn infer(&self, x: &Tensor, scheme: RoundingScheme, seed: u64) -> Tensor {
        let mut ctx = QuantCtx::new(scheme, seed);
        let y = self.conv.infer(x, &self.lq, &mut ctx);
        let y = self.primary.infer(&y, &self.lq, &mut ctx);
        self.capsfc.infer(&y, &self.lq, &mut ctx)
    }
}

fn batch() -> Tensor {
    let mut rng = StdRng::seed_from_u64(99);
    Tensor::rand_uniform([3, 1, 12, 12], 0.0, 1.0, &mut rng)
}

/// Rounds with a deterministic scheme (no stream needed).
fn roundq(t: &Tensor, frac: Option<u8>, scheme: RoundingScheme) -> Tensor {
    match frac {
        Some(f) => round_after(t, &fused(f, scheme, 0)),
        None => t.clone(),
    }
}

/// Full quantized forward pass through the fused layer paths ≡ the unfused
/// tensor-op composition of paper Fig. 9, bitwise, for every deterministic
/// scheme. This pins the fused conv epilogue, the fused squash, the fused
/// vote epilogue, and the fused routing accumulators all at once.
#[test]
fn quantized_stack_matches_tensor_op_reference() {
    let x = batch();
    for scheme in [
        RoundingScheme::Truncation,
        RoundingScheme::RoundToNearest,
        RoundingScheme::RoundToNearestEven,
    ] {
        let stack = Stack::new(scheme);
        let lq = stack.lq;
        let (wq, aq, dr) = (lq.weight_frac, lq.act_frac, lq.effective_dr_frac());

        // Reference: round-after-compute at every Fig. 9 point, using only
        // unfused public tensor ops.
        let conv_w = stack.conv.params()[0].clone();
        let conv_b = stack.conv.params()[1].clone();
        assert_eq!(
            &roundq(&conv_w, wq, scheme),
            &conv_w,
            "weights already on grid"
        );
        let y = conv2d(&x, &conv_w, Some(&conv_b), Conv2dSpec::new(3, 3, 1, 1));
        let y = roundq(&y.map(|v| v.clamp(0.0, 1.0)), aq, scheme);

        let prim_w = stack.primary.params()[0].clone();
        let prim_b = stack.primary.params()[1].clone();
        let y2 = conv2d(&y, &prim_w, Some(&prim_b), Conv2dSpec::new(3, 3, 2, 0));
        let caps = y2
            .reshape([3, 2, 4, 25])
            .unwrap()
            .permute(&[0, 1, 3, 2])
            .reshape([3, 50, 4])
            .unwrap();
        let caps = roundq(&caps.squash_axis(2), aq, scheme);

        let fc_w = stack.capsfc.params()[0].clone();
        let votes = roundq(&caps_votes_infer(&caps, &fc_w), dr, scheme)
            .reshape([3, 50, 5, 6, 1])
            .unwrap();
        let mut logits = Tensor::zeros([3, 50, 5, 1, 1]);
        let mut v = Tensor::zeros([3, 1, 5, 6, 1]);
        for iter in 0..3 {
            let c = roundq(&logits.softmax_axis(2), dr, scheme);
            let weighted = &votes * &expand_to(&c, votes.shape());
            let s = roundq(&weighted.sum_axis_keepdim(1), dr, scheme);
            let last = iter == 2;
            v = roundq(&s.squash_axis(3), if last { aq } else { dr }, scheme);
            if !last {
                let prod = &votes * &expand_to(&v, votes.shape());
                let agreement = roundq(&prod.sum_axis_keepdim(3), dr, scheme);
                logits = roundq(&(&logits + &agreement), dr, scheme);
            }
        }
        let reference = v.reshape([3, 5, 6]).unwrap();

        for t in THREADS {
            let got = with_threads(t, || stack.infer(&x, scheme, 42));
            assert_eq!(got.data(), reference.data(), "{scheme:?}, {t} threads");
        }
    }
}

/// Stochastic rounding through the fused stack: bit-identical for every
/// thread count and reproducible from the seed — the determinism contract
/// of the position-keyed epilogue streams at model scale.
#[test]
fn stochastic_stack_is_thread_invariant_and_seed_deterministic() {
    let x = batch();
    let stack = Stack::new(RoundingScheme::Stochastic);
    let serial = with_threads(1, || stack.infer(&x, RoundingScheme::Stochastic, 42));
    for t in [2, 7] {
        let par = with_threads(t, || stack.infer(&x, RoundingScheme::Stochastic, 42));
        assert_eq!(par.data(), serial.data(), "{t} threads");
    }
    let again = stack.infer(&x, RoundingScheme::Stochastic, 42);
    assert_eq!(again.data(), serial.data(), "same seed must reproduce");
    let other = stack.infer(&x, RoundingScheme::Stochastic, 43);
    assert_ne!(other.data(), serial.data(), "different seed must differ");
}

/// Every scheme's fused stack output lands on the Qa grid — the stored-as-
/// rounded property the epilogues exist to guarantee.
#[test]
fn fused_stack_output_is_on_the_activation_grid() {
    let x = batch();
    let format = QFormat::with_frac(6);
    for scheme in SCHEMES {
        let stack = Stack::new(scheme);
        let out = stack.infer(&x, scheme, 11);
        assert!(
            out.data().iter().all(|&v| format.is_representable(v)),
            "{scheme:?} output off the Q1.6 grid"
        );
    }
}
