//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic random-sampling test driver: each `proptest!` test runs
//! its body for `ProptestConfig::cases` independently sampled inputs drawn
//! from per-case seeded generators. There is **no shrinking** — a failing
//! case panics with the ordinary assertion message (the sampled inputs are
//! reproducible because seeding is deterministic).
//!
//! Supported surface:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`;
//! * numeric `Range` / `RangeInclusive` strategies, tuple strategies (up
//!   to arity 4), [`strategy::Just`], [`collection::vec`];
//! * [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], [`prop_oneof!`];
//! * [`test_runner::ProptestConfig::with_cases`].

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between homogeneous strategies ([`crate::prop_oneof!`]).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Creates a union; panics when `options` is empty.
        pub fn new(options: Vec<S>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! requires at least one option"
            );
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! numeric_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vec strategy from an element strategy and a length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($opt:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($opt),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` for every sampled input tuple.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    0x9E37_79B9u64
                        .wrapping_mul(case.wrapping_add(1))
                        .wrapping_add(0x5EED),
                );
                $(let $arg = ($strat).sample(&mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.0f32..2.0, n in 1usize..10) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_spec(v in crate::collection::vec(0.0f32..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn flat_map_links_sizes(
            t in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
                crate::collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, c, v))
            }),
        ) {
            let (r, c, v) = t;
            prop_assert_eq!(v.len(), r * c);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Doc comments must parse too.
        #[test]
        fn config_form_works(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }
}
