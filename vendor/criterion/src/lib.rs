//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API used by this workspace's
//! benches: [`Criterion::bench_function`] with [`Bencher::iter`] /
//! [`Bencher::iter_batched`], the [`criterion_group!`] /
//! [`criterion_main!`] macros, and [`BatchSize`]. Measurement is a simple
//! median-of-samples wall-clock estimate: each sample runs enough
//! iterations to cover a minimum measurement window, and the per-iteration
//! median over `sample_size` samples is reported on stdout.
//!
//! A positional command-line argument acts as a substring filter on bench
//! names (matching `cargo bench <filter>` behaviour); flag arguments are
//! ignored.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is sized; accepted for API compatibility (the
/// measurement strategy does not change with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark harness handle passed to bench functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    min_sample_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            sample_size: 10,
            min_sample_time: Duration::from_millis(20),
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            min_sample_time: self.min_sample_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    min_sample_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine` called back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + iteration-count calibration.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_sample_time || iters_per_sample > (1 << 20) {
                break;
            }
            let factor = (self.min_sample_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                .ceil() as u64;
            iters_per_sample = (iters_per_sample * factor.clamp(2, 100)).min(1 << 20);
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    /// Benchmarks `routine` on fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with one timed call.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters_per_sample = (self.min_sample_time.as_secs_f64() / once.as_secs_f64())
            .ceil()
            .clamp(1.0, 1e6) as u64;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let lo = self.samples_ns[0];
        let hi = self.samples_ns[self.samples_ns.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        // Fast routine: calibration must terminate and produce samples.
        c.bench_function("noop-add", |b| b.iter(|| black_box(1u64) + 1));
    }

    #[test]
    fn iter_batched_consumes_setup_inputs() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("batched-sum", |b| {
            b.iter_batched(
                || vec![1.0f32; 64],
                |v| v.iter().sum::<f32>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with('s'));
    }
}
