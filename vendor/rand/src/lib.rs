//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this vendored
//! crate provides the (small) API surface the workspace actually uses:
//!
//! * [`Rng::gen_range`] over half-open and inclusive ranges of the common
//!   integer and float types;
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (not the upstream ChaCha12 — streams differ from real
//!   `rand`, but all workspace code only relies on seed-determinism and
//!   reasonable statistical quality);
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is `no_std`-free plain Rust with no dependencies.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw a uniform sample of `T` from a generator.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty => $unit:ident, $bits:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = $unit(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = $unit(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

/// Uniform f32 in [0, 1) with 24 bits of precision.
fn unit_f32<G: RngCore + ?Sized>(rng: &mut G) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform f64 in [0, 1) with 53 bits of precision.
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

float_sample_range!(f32 => unit_f32, 24, f64 => unit_f64, 53);

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly at random (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&x), "{x}");
            let y: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn float_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }
}
