//! Hardware energy estimation (paper §IV-D): combine the UMC-65nm-
//! calibrated unit cost models with the full-size ShallowCaps/DeepCaps
//! operation counts to estimate how the framework's wordlength choices
//! translate into inference energy.
//!
//! No training involved — this example runs in milliseconds.
//!
//! Run with: `cargo run --release --example energy_estimation`

use qcn_repro::hwmodel::archstats::{deep_caps, shallow_caps};
use qcn_repro::hwmodel::{inference_energy_nj, uniform_energy_nj, HwUnit, LayerBits};

fn main() {
    println!("== per-inference energy estimates (UMC-65nm-calibrated models) ==\n");
    for arch in [shallow_caps(), deep_caps(3)] {
        println!(
            "{} ({} MACs, {} squash, {} softmax per inference):",
            arch.name,
            arch.total_macs(),
            arch.total_squash_ops(),
            arch.total_softmax_ops()
        );
        println!(
            "  fp32-equivalent (32-bit datapath): {:>12.1} nJ",
            uniform_energy_nj(&arch, 32, 8)
        );
        println!(
            "  uniform 8-bit:                     {:>12.1} nJ",
            uniform_energy_nj(&arch, 8, 8)
        );
        // A Q-CapsNets-style assignment: decreasing weights toward the
        // output, 4-bit routing.
        let bits: Vec<LayerBits> = (0..arch.layers.len())
            .map(|l| LayerBits {
                mac_bits: 8u8.saturating_sub(l as u8).max(4),
                dr_bits: 4,
            })
            .collect();
        let qcaps = inference_energy_nj(&arch, &bits);
        println!("  Q-CapsNets-style (≤8-bit, DR=4):   {qcaps:>12.1} nJ");
        println!(
            "  saving vs fp32: {:.1}x\n",
            uniform_energy_nj(&arch, 32, 8) / qcaps
        );
    }
    println!("unit cost reference at 8 bits:");
    for unit in [HwUnit::mac(), HwUnit::squash(), HwUnit::softmax()] {
        println!(
            "  {:<8} {:>8.3} pJ {:>10.1} µm²",
            unit.name(),
            unit.energy_pj(8),
            unit.area_um2(8)
        );
    }
}
