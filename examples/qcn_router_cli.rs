//! `qcn-router-cli`: a replica fleet behind the routing tier, in one
//! process — the failover demo you can drive by hand.
//!
//! Spawns N in-process replicas (each a full `SocketServer` serving both
//! engines), puts a `qcn_router::Router` in front, and takes commands on
//! stdin to kill and revive replicas while you watch traffic survive.
//! Clients connect to the router with `qcn_serve::client::Client` exactly
//! as they would to a single server (see `docs/serving.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example qcn_router_cli [ADDR] [REPLICAS] [SCHEME]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:7890`, `REPLICAS` to 3, `SCHEME` to
//! `rtn` (one of `trn`, `rtn`, `rtne`, `sr`). Commands:
//!
//! * `status` — per-replica health, traffic and retry counters
//! * `infer` — one routed inference against each model id, timed
//! * `kill N` / `revive N` — stop replica N / restart it on the same port
//! * `prom` — the router's Prometheus text
//! * `quit` (or EOF) — drain everything and exit

use qcn_repro::capsnet::{ModelQuant, ShallowCaps, ShallowCapsConfig};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::export::pack_model;
use qcn_repro::intinfer::{IntModel, UnitMode};
use qcn_repro::router::{bind_reusable, Router, RouterConfig, RouterSnapshot};
use qcn_repro::serve::{
    Client, FakeQuantEngine, IntEngine, ModelRegistry, ServeConfig, Server, SocketServer,
};
use qcn_repro::tensor::Tensor;
use std::io::BufRead;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Fatal startup error: print the typed message and exit — never an
/// unwind with a backtrace pointed at the operator.
fn die(msg: String) -> ! {
    eprintln!("qcn-router-cli: {msg}");
    std::process::exit(1);
}

/// Builds one replica, surfacing every failure as a typed message (the
/// revive path reports it and keeps the shell alive).
fn replica(
    model: &ShallowCaps,
    scheme: RoundingScheme,
    listener: std::net::TcpListener,
) -> Result<SocketServer, String> {
    let mut config = ModelQuant::uniform(3, 5, scheme);
    for lq in &mut config.layers {
        lq.dr_frac = Some(4);
    }
    let packed = pack_model(model, &config);
    let int_model = IntModel::load(&model.descriptor(), &packed)
        .map_err(|e| format!("packed model failed to load: {e}"))?;
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "shallow/fq",
            FakeQuantEngine::new(model, config, [1, 16, 16]),
        )
        .map_err(|e| format!("cannot register shallow/fq: {e}"))?;
    registry
        .register(
            "shallow/int",
            IntEngine::new(int_model, 5, UnitMode::FloatExact, [1, 16, 16]),
        )
        .map_err(|e| format!("cannot register shallow/int: {e}"))?;
    let server = Arc::new(Server::start(registry, ServeConfig::default()));
    SocketServer::from_listener(server, listener).map_err(|e| format!("replica cannot start: {e}"))
}

fn print_status(snap: &RouterSnapshot) {
    println!(
        "router: uptime {:.1}s | completed {} failed {} rejected {} inflight {} \
         | p50/p95/p99 {}/{}/{} µs | conns {} accepted / {} active",
        snap.uptime_secs,
        snap.completed,
        snap.failed,
        snap.rejected,
        snap.inflight,
        snap.latency_p50_us,
        snap.latency_p95_us,
        snap.latency_p99_us,
        snap.connections_accepted,
        snap.connections_active,
    );
    for (i, b) in snap.backends.iter().enumerate() {
        println!(
            "  replica {i} @ {} | {} | ok {} err {} retries {} budget-denied {} ejections {} \
             | outstanding {} | probes {} ok / {} fail | connects {}",
            b.addr,
            if b.available { "available" } else { "EJECTED" },
            b.ok,
            b.error,
            b.retries,
            b.budget_exhausted,
            b.ejections,
            b.outstanding,
            b.health_ok,
            b.health_fail,
            b.connects,
        );
    }
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7890".to_string());
    let replicas: usize = match std::env::args().nth(2) {
        None => 3,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| die(format!("REPLICAS must be a number, got {s:?}"))),
    };
    let scheme = match std::env::args().nth(3).as_deref() {
        None | Some("rtn") => RoundingScheme::RoundToNearest,
        Some("trn") => RoundingScheme::Truncation,
        Some("rtne") => RoundingScheme::RoundToNearestEven,
        Some("sr") => RoundingScheme::Stochastic,
        Some(other) => {
            eprintln!("unknown scheme {other:?}: use trn | rtn | rtne | sr");
            std::process::exit(2);
        }
    };

    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
    eprintln!("starting {replicas} replicas (scheme {scheme})…");
    let mut fleet: Vec<Option<SocketServer>> = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    for _ in 0..replicas {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap_or_else(|e| die(format!("cannot bind an ephemeral replica port: {e}")));
        let addr = listener
            .local_addr()
            .unwrap_or_else(|e| die(format!("cannot resolve a replica's bound address: {e}")));
        addrs.push(addr);
        fleet.push(Some(
            replica(&model, scheme, listener).unwrap_or_else(|e| die(e)),
        ));
    }
    for (i, a) in addrs.iter().enumerate() {
        eprintln!("  replica {i} on {a}");
    }

    let router = Router::bind(RouterConfig::new(addrs.iter().copied()), addr.as_str())
        .unwrap_or_else(|e| die(format!("cannot bind router on {addr}: {e}")));
    eprintln!(
        "router on {} — status | infer | kill N | revive N | prom | quit",
        router.local_addr()
    );

    let sample = Tensor::from_fn([1, 16, 16], |idx| {
        (((idx[1] * 16 + idx[2]) * 37).rem_euclid(32)) as f32 / 32.0
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match &line {
            Ok(l) => l.trim(),
            Err(_) => break,
        };
        let mut words = line.split_whitespace();
        match (words.next(), words.next()) {
            (Some("status"), _) => print_status(&router.snapshot()),
            (Some("prom"), _) => print!("{}", router.prometheus()),
            (Some("infer"), _) => match Client::connect(router.local_addr()) {
                Ok(mut client) => {
                    for id in ["shallow/fq", "shallow/int"] {
                        let t = Instant::now();
                        match client.infer(id, &sample) {
                            Ok(out) => println!(
                                "{id}: {:?} in {} µs",
                                out.shape().dims(),
                                t.elapsed().as_micros()
                            ),
                            Err(e) => println!("{id}: FAILED: {e}"),
                        }
                    }
                }
                Err(e) => println!("cannot connect to the router: {e}"),
            },
            (Some(cmd @ ("kill" | "revive")), Some(n)) => {
                let Ok(i) = n.parse::<usize>() else {
                    println!("usage: {cmd} N");
                    continue;
                };
                if i >= fleet.len() {
                    println!("no replica {i} (fleet of {})", fleet.len());
                    continue;
                }
                match (cmd, fleet[i].take()) {
                    ("kill", Some(net)) => {
                        net.shutdown();
                        println!("replica {i} stopped — watch `status` eject it");
                    }
                    ("kill", None) => println!("replica {i} is already down"),
                    ("revive", None) => match bind_reusable(addrs[i]) {
                        Ok(listener) => match replica(&model, scheme, listener) {
                            Ok(net) => {
                                fleet[i] = Some(net);
                                println!(
                                    "replica {i} back on {} — the next health probe readmits it",
                                    addrs[i]
                                );
                            }
                            Err(e) => println!("cannot revive replica {i}: {e}"),
                        },
                        Err(e) => println!("cannot rebind {}: {e}", addrs[i]),
                    },
                    ("revive", Some(net)) => {
                        println!("replica {i} is already up");
                        fleet[i] = Some(net);
                    }
                    _ => unreachable!(),
                }
            }
            (Some("quit") | Some("exit"), _) => break,
            (None, _) => {}
            (Some(other), _) => {
                println!(
                    "unknown command {other:?}: status | infer | kill N | revive N | prom | quit"
                );
            }
        }
    }
    eprintln!("draining and shutting down…");
    let last = router.shutdown();
    print_status(&last);
    for net in fleet.into_iter().flatten() {
        net.shutdown();
    }
}
