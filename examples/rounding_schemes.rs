//! Rounding-scheme study (paper §II-B and §IV-C): measure the numeric
//! error statistics of truncation, round-to-nearest and stochastic
//! rounding, then run the whole Q-CapsNets framework once per scheme and
//! let the §III-B selection rules pick the winner.
//!
//! Run with: `cargo run --release --example rounding_schemes`

use qcn_repro::capsnet::{train, CapsNet, ShallowCaps, ShallowCapsConfig, TrainConfig};
use qcn_repro::datasets::SynthKind;
use qcn_repro::fixed::{QFormat, QuantizationStats, Quantizer, RoundingScheme};
use qcn_repro::framework::{run_library, FrameworkConfig, Selection};
use qcn_repro::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Part 1 — pure numerics: quantize a random signal at Q1.4 and report
    // the per-scheme bias/MSE/SQNR.
    println!("== rounding-scheme error statistics (Q1.4, 16k samples) ==\n");
    println!(
        "{:<6} {:>12} {:>14} {:>12}",
        "scheme", "bias", "MSE", "SQNR (dB)"
    );
    let mut rng = StdRng::seed_from_u64(1);
    let signal = Tensor::rand_uniform([16_384], -0.95, 0.95, &mut rng);
    for scheme in RoundingScheme::ALL {
        let q = Quantizer::new(QFormat::with_frac(4), scheme).quantize(&signal, &mut rng);
        let stats = QuantizationStats::measure(&signal, &q);
        println!(
            "{:<6} {:>12.6} {:>14.8} {:>12.2}",
            scheme.to_string(),
            stats.bias,
            stats.mse,
            stats.sqnr_db
        );
    }
    println!("\n(truncation shows the negative bias of §II-B; SR is unbiased)\n");

    // Part 2 — end to end: train a small CapsNet and run the framework
    // once per scheme with the §III-B selection rules.
    let (train_set, test_set) = SynthKind::FashionMnist.train_test(1000, 300, 11);
    let mut model = ShallowCaps::new(ShallowCapsConfig::small(1), 11);
    println!("training ShallowCaps on {}…", SynthKind::FashionMnist);
    train(
        &mut model,
        &train_set,
        &test_set,
        &TrainConfig {
            epochs: 5,
            verbose: true,
            ..TrainConfig::default()
        },
    );
    let fp32_bits: u64 = model
        .groups()
        .iter()
        .map(|g| g.weight_count as u64 * 32)
        .sum();
    let library = run_library(
        &model,
        &test_set,
        &FrameworkConfig {
            acc_tol: 0.02,
            memory_budget_bits: fp32_bits / 6,
            ..FrameworkConfig::default()
        },
        &RoundingScheme::ALL,
    );
    println!("\nper-scheme outcomes:");
    for (scheme, report) in &library.runs {
        let summary: Vec<String> = report
            .outcome
            .results()
            .iter()
            .map(|r| {
                format!(
                    "{} acc={:.2}% W×{:.2}",
                    r.kind,
                    r.accuracy * 100.0,
                    r.weight_mem_reduction
                )
            })
            .collect();
        println!("  {scheme}: {}", summary.join("; "));
    }
    match &library.selection {
        Selection::Satisfied { scheme, result } => println!(
            "\nselected (rules A1–A4): {scheme} — acc {:.2}%, W mem ×{:.2}, A mem ×{:.2}",
            result.accuracy * 100.0,
            result.weight_mem_reduction,
            result.act_mem_reduction
        ),
        Selection::Fallback { memory, accuracy } => {
            println!(
                "\nselected (rules B1–B3): memory slot {} (acc {:.2}%), accuracy slot {} (W ×{:.2})",
                memory.0,
                memory.1.accuracy * 100.0,
                accuracy.0,
                accuracy.1.weight_mem_reduction
            );
        }
    }
}
