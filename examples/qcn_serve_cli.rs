//! `qcn-serve-cli`: load a packed quantized model and serve it over TCP.
//!
//! Builds a ShallowCaps model, quantizes it, exports the packed wordlength
//! blob, loads it back into the true integer engine, and puts both
//! datapaths behind the dynamic-batching server with the socket front-end
//! on top — the full deployment story in one binary. Clients connect with
//! `qcn_serve::client::Client` (see `docs/serving.md` for the wire
//! protocol).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example qcn_serve_cli [ADDR] [SCHEME] [METRICS_ADDR]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:7878`; `SCHEME` is one of `trn`, `rtn`,
//! `rtne`, `sr` (default `rtn`); `METRICS_ADDR` (default `127.0.0.1:7879`)
//! is a Prometheus endpoint serving `GET /metrics`, or `none` to disable
//! it. The server runs until stdin closes or a `quit` line arrives; a
//! `metrics` line prints a live snapshot and a `prom` line dumps the full
//! Prometheus text (remote clients get the same text via
//! `Client::stats()`). Model ids: `shallow/fq` (fake-quant f32) and
//! `shallow/int` (true integer).

use qcn_repro::capsnet::{ModelQuant, ShallowCaps, ShallowCapsConfig};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::export::pack_model;
use qcn_repro::intinfer::{IntModel, UnitMode};
use qcn_repro::serve::net::{MetricsHttp, SocketServer};
use qcn_repro::serve::{
    FakeQuantEngine, IntEngine, MetricsSnapshot, ModelRegistry, ServeConfig, Server,
};
use std::io::BufRead;
use std::sync::Arc;

/// Fatal startup error: print the typed message and exit — never an
/// unwind with a backtrace pointed at the operator.
fn die(msg: String) -> ! {
    eprintln!("qcn-serve-cli: {msg}");
    std::process::exit(1);
}

fn print_metrics(m: &MetricsSnapshot) {
    println!(
        "uptime {:.1}s | submitted {} completed {} failed {} expired {} \
         | rejected full/closed {}/{} | mean batch {:.2} | p50/p95/p99 {}/{}/{} µs \
         | conns {} accepted / {} active | malformed {} | wire {} B in / {} B out",
        m.uptime_secs,
        m.submitted,
        m.completed,
        m.failed,
        m.expired,
        m.rejected_full,
        m.rejected_closed,
        m.mean_batch,
        m.latency_p50_us,
        m.latency_p95_us,
        m.latency_p99_us,
        m.connections_accepted,
        m.connections_active,
        m.malformed_frames,
        m.bytes_in,
        m.bytes_out,
    );
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let scheme = match std::env::args().nth(2).as_deref() {
        None | Some("rtn") => RoundingScheme::RoundToNearest,
        Some("trn") => RoundingScheme::Truncation,
        Some("rtne") => RoundingScheme::RoundToNearestEven,
        Some("sr") => RoundingScheme::Stochastic,
        Some(other) => {
            eprintln!("unknown scheme {other:?}: use trn | rtn | rtne | sr");
            std::process::exit(2);
        }
    };

    // The served model: ShallowCaps quantized to Q1.5 activations/weights
    // with Q1.4 routing, packed to the deployment blob and loaded back.
    let model = ShallowCaps::new(ShallowCapsConfig::small(1), 5);
    let mut config = ModelQuant::uniform(3, 5, scheme);
    for lq in &mut config.layers {
        lq.dr_frac = Some(4);
    }
    eprintln!("packing model (scheme {scheme})…");
    let packed = pack_model(&model, &config);
    let int_model = IntModel::load(&model.descriptor(), &packed)
        .unwrap_or_else(|e| die(format!("packed model failed to load: {e}")));

    let mut registry = ModelRegistry::new();
    registry
        .register(
            "shallow/fq",
            FakeQuantEngine::new(&model, config, [1, 16, 16]),
        )
        .unwrap_or_else(|e| die(format!("cannot register shallow/fq: {e}")));
    registry
        .register(
            "shallow/int",
            IntEngine::new(int_model, 5, UnitMode::FloatExact, [1, 16, 16]),
        )
        .unwrap_or_else(|e| die(format!("cannot register shallow/int: {e}")));

    let server = Arc::new(Server::start(registry, ServeConfig::default()));
    let net = SocketServer::bind(Arc::clone(&server), addr.as_str())
        .unwrap_or_else(|e| die(format!("cannot bind {addr}: {e}")));
    let metrics_addr = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "127.0.0.1:7879".to_string());
    let exporter = if metrics_addr == "none" {
        None
    } else {
        let exporter = MetricsHttp::bind(Arc::clone(&server), metrics_addr.as_str())
            .unwrap_or_else(|e| die(format!("cannot bind metrics endpoint {metrics_addr}: {e}")));
        eprintln!("metrics on http://{}/metrics", exporter.local_addr());
        Some(exporter)
    };
    eprintln!(
        "serving {:?} on {} — `metrics` for a snapshot, `prom` for Prometheus text, \
         `quit` (or EOF) to stop",
        server.model_ids(),
        net.local_addr()
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line.as_deref().map(str::trim) {
            Ok("metrics") => print_metrics(&server.metrics()),
            Ok("prom") => print!("{}", server.prometheus()),
            Ok("quit") | Ok("exit") | Err(_) => break,
            Ok("") => {}
            Ok(other) => eprintln!("unknown command {other:?}: metrics | prom | quit"),
        }
    }
    eprintln!("draining and shutting down…");
    drop(exporter);
    let last = net.shutdown();
    print_metrics(&last);
}
