//! Quickstart: train a small Capsule Network on a synthetic MNIST-like
//! dataset, then quantize it with the Q-CapsNets framework and compare
//! accuracy and memory.
//!
//! Run with: `cargo run --release --example quickstart`

use qcn_repro::capsnet::{train, CapsNet, ShallowCaps, ShallowCapsConfig, TrainConfig};
use qcn_repro::datasets::SynthKind;
use qcn_repro::framework::{report, run, FrameworkConfig};

fn main() {
    // 1. Data: a procedural 10-class glyph dataset standing in for MNIST.
    let (train_set, test_set) = SynthKind::Mnist.train_test(1000, 300, 7);

    // 2. Model: the scaled ShallowCaps (conv stem → PrimaryCaps →
    //    DigitCaps with 3 dynamic-routing iterations).
    let mut model = ShallowCaps::new(ShallowCapsConfig::small(1), 7);

    // 3. Train in full precision (a couple of minutes on one CPU core).
    println!("training ShallowCaps on {}…", SynthKind::Mnist);
    let report_train = train(
        &mut model,
        &train_set,
        &test_set,
        &TrainConfig {
            epochs: 5,
            verbose: true,
            ..TrainConfig::default()
        },
    );
    println!(
        "full-precision accuracy: {:.2}%\n",
        report_train.final_accuracy * 100.0
    );

    // 4. Quantize: tolerate 1% accuracy loss within a quarter of the FP32
    //    weight memory.
    let fp32_bits: u64 = model
        .groups()
        .iter()
        .map(|g| g.weight_count as u64 * 32)
        .sum();
    let outcome = run(
        &model,
        &test_set,
        &FrameworkConfig {
            acc_tol: 0.01,
            memory_budget_bits: fp32_bits / 4,
            ..FrameworkConfig::default()
        },
    );

    // 5. Report.
    println!(
        "framework evaluated {} configurations (fp32 {:.2}%, target {:.2}%)",
        outcome.evaluations,
        outcome.acc_fp32 * 100.0,
        outcome.acc_target * 100.0
    );
    for result in outcome.outcome.results() {
        println!("{}", report::layer_table(&model.groups(), result));
    }

    // 6. Deployment: pack the winning model's weights into bit-exact
    //    fixed-point storage and compare with FP32.
    let best = outcome.outcome.results()[0].clone();
    let packed = qcn_repro::framework::export::pack_model(&model, &best.config);
    let fp32_bytes = model.total_weights() * 4;
    println!(
        "packed weight blob: {} bytes (FP32 would be {} bytes; {:.2}x smaller)",
        packed.total_bytes(),
        fp32_bytes,
        fp32_bytes as f32 / packed.total_bytes() as f32
    );
}
