//! DeepCaps on the CIFAR10 stand-in — the paper's headline experiment
//! (6.2× weight-memory reduction at 0.15 % accuracy loss, §IV-B).
//!
//! Trains the scaled DeepCaps (conv stem, two residual ConvCaps blocks
//! with a dynamic-routing skip branch, routed capsule output layer) on the
//! coloured synthetic dataset, then runs the framework with stochastic
//! rounding — the scheme the paper found best for DeepCaps.
//!
//! Run with: `cargo run --release --example deepcaps_cifar10`

use qcn_repro::capsnet::{train, CapsNet, DeepCaps, DeepCapsConfig, TrainConfig};
use qcn_repro::datasets::augment::AugmentPolicy;
use qcn_repro::datasets::SynthKind;
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::framework::{report, run, FrameworkConfig};

fn main() {
    let (train_set, test_set) = SynthKind::Cifar10.train_test(1500, 400, 21);
    let mut model = DeepCaps::new(DeepCapsConfig::small(3), 21);
    println!(
        "DeepCaps groups: {:?}",
        model
            .groups()
            .iter()
            .map(|g| format!("{}{}", g.name, if g.has_routing { "*" } else { "" }))
            .collect::<Vec<_>>()
    );
    println!("(* = contains dynamic routing)\n");
    println!("training DeepCaps on {}…", SynthKind::Cifar10);
    let train_report = train(
        &mut model,
        &train_set,
        &test_set,
        &TrainConfig {
            epochs: 8,
            augment: AugmentPolicy::cifar10(),
            verbose: true,
            ..TrainConfig::default()
        },
    );
    println!(
        "full-precision accuracy: {:.2}%\n",
        train_report.final_accuracy * 100.0
    );

    let fp32_bits: u64 = model
        .groups()
        .iter()
        .map(|g| g.weight_count as u64 * 32)
        .sum();
    let outcome = run(
        &model,
        &test_set,
        &FrameworkConfig {
            acc_tol: 0.005,
            memory_budget_bits: fp32_bits / 6, // aim for ≈ 6× like the paper
            scheme: RoundingScheme::Stochastic,
            ..FrameworkConfig::default()
        },
    );
    println!(
        "framework: fp32 {:.2}%, target {:.2}%, {} evaluations",
        outcome.acc_fp32 * 100.0,
        outcome.acc_target * 100.0,
        outcome.evaluations
    );
    for result in outcome.outcome.results() {
        println!("{}", report::layer_table(&model.groups(), result));
    }
}
