//! Running the reproduction on the *real* MNIST (optional): if the
//! standard IDX files are present, train on a subset and quantize —
//! demonstrating that nothing in the pipeline is tied to the synthetic
//! data. Without the files, prints download instructions and exits.
//!
//! Expected files (searched in `./data/` and `$MNIST_DIR`):
//!   train-images-idx3-ubyte  train-labels-idx1-ubyte
//!   t10k-images-idx3-ubyte   t10k-labels-idx1-ubyte
//!
//! Run with: `cargo run --release --example real_mnist`

use qcn_repro::capsnet::{train, CapsNet, ShallowCaps, ShallowCapsConfig, TrainConfig};
use qcn_repro::datasets::idx::load_idx;
use qcn_repro::framework::{report, run, FrameworkConfig};
use std::path::PathBuf;

fn data_dir() -> PathBuf {
    std::env::var("MNIST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("data"))
}

fn main() {
    let dir = data_dir();
    let train_images = dir.join("train-images-idx3-ubyte");
    if !train_images.exists() {
        println!(
            "real MNIST not found in {} — place the four IDX files there\n\
             (or set MNIST_DIR) to run this example; every other example\n\
             and bench uses the built-in synthetic datasets instead.",
            dir.display()
        );
        return;
    }
    let train_full = load_idx(&train_images, dir.join("train-labels-idx1-ubyte"), 10)
        .expect("parse MNIST training set");
    let test_full = load_idx(
        dir.join("t10k-images-idx3-ubyte"),
        dir.join("t10k-labels-idx1-ubyte"),
        10,
    )
    .expect("parse MNIST test set");
    // CPU-friendly subset; 28×28 inputs use the paper geometry scaled in
    // channel count only.
    let train_set = train_full.truncate(4000);
    let test_set = test_full.truncate(1000);
    let config = ShallowCapsConfig {
        image_side: 28,
        conv_kernel: 9,
        primary_kernel: 9,
        ..ShallowCapsConfig::small(1)
    };
    let mut model = ShallowCaps::new(config, 1);
    println!("training ShallowCaps on real MNIST (28×28, 4000 samples)…");
    let report_train = train(
        &mut model,
        &train_set,
        &test_set,
        &TrainConfig {
            epochs: 6,
            verbose: true,
            ..TrainConfig::default()
        },
    );
    println!(
        "full-precision accuracy: {:.2}%",
        report_train.final_accuracy * 100.0
    );
    let fp32_bits: u64 = model
        .groups()
        .iter()
        .map(|g| g.weight_count as u64 * 32)
        .sum();
    let outcome = run(
        &model,
        &test_set,
        &FrameworkConfig {
            acc_tol: 0.005,
            memory_budget_bits: fp32_bits / 5,
            ..FrameworkConfig::default()
        },
    );
    for result in outcome.outcome.results() {
        println!("{}", report::layer_table(&model.groups(), result));
    }
}
