//! Training with the reconstruction regularizer (Sabour et al.'s decoder,
//! paper §II footnote 3) and rendering reconstructions as ASCII art.
//!
//! Run with: `cargo run --release --example reconstruction`

use qcn_repro::capsnet::{
    train_step_with_reconstruction, Adam, CapsNet, Decoder, MarginLoss, ModelQuant, QuantCtx,
    ShallowCaps, ShallowCapsConfig,
};
use qcn_repro::datasets::{shuffled_batches, SynthKind};
use qcn_repro::fixed::RoundingScheme;
use qcn_repro::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Renders a `[1, h, w]`-ish flat pixel vector as ASCII art.
fn ascii(pixels: &[f32], w: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    pixels
        .chunks(w)
        .map(|row| {
            row.iter()
                .map(|&p| {
                    let idx = (p.clamp(0.0, 1.0) * (RAMP.len() - 1) as f32).round() as usize;
                    RAMP[idx] as char
                })
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let (train_set, test_set) = SynthKind::Mnist.train_test(800, 100, 33);
    let config = ShallowCapsConfig::small(1);
    let side = config.image_side;
    let mut model = ShallowCaps::new(config, 33);
    let mut decoder = Decoder::new(10, 8, 48, 96, side * side, 33);
    let mut opt = Adam::new(0.002);
    let loss = MarginLoss::default();
    let mut rng = StdRng::seed_from_u64(33);
    println!("training ShallowCaps + reconstruction decoder…");
    for epoch in 0..6 {
        let (mut total, mut margin, mut recon, mut batches) = (0.0, 0.0, 0.0, 0);
        for batch in shuffled_batches(train_set.len(), 32, &mut rng) {
            let (images, labels) = train_set.batch(&batch);
            let (t, m, r) = train_step_with_reconstruction(
                &mut model,
                &mut decoder,
                &images,
                &labels,
                &loss,
                0.0005,
                &mut opt,
            );
            total += t;
            margin += m;
            recon += r;
            batches += 1;
        }
        let b = batches as f32;
        println!(
            "epoch {:>2}: total {:.4}  margin {:.4}  reconstruction {:.4}",
            epoch + 1,
            total / b,
            margin / b,
            recon / b
        );
    }

    // Show three test images next to their reconstructions.
    let fp = ModelQuant::full_precision(model.groups().len());
    let mut ctx = QuantCtx::new(RoundingScheme::Truncation, 0);
    for index in [0usize, 1, 2] {
        let image = test_set.image(index);
        let batch = image
            .reshape([1, 1, side, side])
            .expect("single-image batch");
        let caps = model.infer(&batch, &fp, &mut ctx);
        let recon = decoder.reconstruct(&caps, &mut ctx);
        let original = ascii(image.data(), side);
        let decoded = ascii(recon.data(), side);
        println!(
            "\nclass {} — original (left) vs reconstruction (right):",
            test_set.labels()[index]
        );
        for (a, b) in original.lines().zip(decoded.lines()) {
            println!("{a}   {b}");
        }
        // Reconstruction quality metric.
        let target = Tensor::from_vec(image.data().to_vec(), [side * side]).expect("flat");
        let mse = (&recon.reshape([side * side]).expect("flat recon") - &target)
            .map(|x| x * x)
            .mean();
        println!("MSE: {mse:.4}");
    }
}
